#include "system.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"
#include "isa/assembler.hh"
#include "sim/config_hash.hh"

namespace chex
{

namespace
{

/** Shadow-capability-table address for DRAM-traffic modelling. */
uint64_t
capShadowAddr(Pid pid)
{
    constexpr uint64_t CapShadowBase = 0xffff800000000000ull;
    return CapShadowBase + static_cast<uint64_t>(pid) * 16;
}

} // anonymous namespace

System::System(const SystemConfig &cfg_in)
    : cfg(cfg_in),
      hier(cfg.hierarchy),
      corePtr(std::make_unique<Core>(cfg.core, hier)),
      ms(mem),
      heapAlloc(mem, layout::HeapBase, layout::HeapLimit),
      capCache(cfg.capCacheEntries)
{
    capTable.setMaxAllocSize(cfg.maxAllocSize);
    capTable.setTrackInitialization(cfg.detectUninitializedReads);

    RuleDatabase rules;
    if (cfg.useTableIRules) {
        rules = RuleDatabase::tableI();
    } else {
        // Checker experiment: seed only the trivial MOV rule, as an
        // expert would, and let the checker construct the rest.
        RuleDatabase seed;
        for (const auto &rule : RuleDatabase::tableI().rules()) {
            if (rule.key.type == UopType::IntAlu &&
                rule.key.op == AluOp::Mov)
                seed.install(rule);
            // Loads/stores flow through the alias machinery
            // unconditionally; keep those rules too.
            if (rule.key.type == UopType::Load ||
                rule.key.type == UopType::Store)
                seed.install(rule);
        }
        rules = seed;
    }
    trackerPtr = std::make_unique<SpeculativePointerTracker>(
        std::move(rules), aliases, cfg.aliasPredictor, cfg.aliasCache);

    if (cfg.enableChecker) {
        checkerPtr = std::make_unique<HardwareChecker>(
            capTable, trackerPtr->ruleDatabase());
    }

    if (cfg.variant.kind == VariantKind::Asan)
        heapAlloc.setAsan(cfg.asanAllocator);
}

void
System::load(const Program &program)
{
    prog = program;
    crackCache.clear();
    crackCache.resize(prog.code.size());
    for (size_t i = 0; i < prog.code.size(); ++i)
        crackCache[i] = Decoder::crack(prog.code[i], prog.addrOf(i));
    btTranslated.assign(prog.code.size(), false);

    // Constant pool: slots hold the addresses of global objects.
    for (const auto &slot : prog.pool)
        mem.write(slot.addr, slot.value, 8);

    // Initialized data (schedules, size tables, exploit payloads).
    for (const auto &blob : prog.initData)
        mem.writeBlock(blob.addr, blob.bytes.data(), blob.bytes.size());

    // Stack.
    ms.setReg(RSP, layout::StackTop);

    // The OS registers heap-management entry/exit points in MSRs and
    // preloads the symbol table into shadow capabilities.
    if (trackerEnabled()) {
        for (const auto &f : prog.runtimeFuncs) {
            switch (f.kind) {
              case IntrinsicKind::Malloc:
              case IntrinsicKind::Calloc:
              case IntrinsicKind::Realloc:
              case IntrinsicKind::Free:
                msrs.registerFunction(f.kind, f.entryAddr, f.exitAddr);
                break;
              default:
                break;
            }
        }
        for (const auto &sym : prog.symbols) {
            Pid pid = capTable.addGlobal(sym.name, sym.addr, sym.size);
            // Global data objects carry defined (data/bss) contents.
            capTable.markAllInitialized(pid);
            // Seed alias entries for the constant-pool slots that
            // hold this global's address: a PC-relative load of the
            // slot tags the destination register automatically.
            for (const auto &slot : prog.pool)
                if (slot.refSymbol == sym.name)
                    trackerPtr->seedAlias(slot.addr, pid);
        }
    }
}

void
System::raise(Violation v, uint64_t pc, uint64_t addr, Pid pid)
{
    result.violations.push_back({v, pc, addr, pid});
    result.violationDetected = true;
    if (cfg.variant.haltOnViolation)
        running = false;
}

void
System::addCapUop(UopType type, RegId src, unsigned extra_latency)
{
    StaticUop u;
    u.type = type;
    u.src1 = src;
    u.synthetic = true;
    UopTimingIn tin;
    tin.uop = &u;
    tin.extraLatency = extra_latency;
    corePtr->addUop(tin);
    ++result.injectedUops;
}

void
System::interceptEntry(IntrinsicKind kind, uint64_t pc)
{
    PendingAlloc p;
    p.kind = kind;

    switch (kind) {
      case IntrinsicKind::Malloc:
      case IntrinsicKind::Calloc:
      case IntrinsicKind::Realloc: {
        uint64_t size = 0;
        if (kind == IntrinsicKind::Malloc)
            size = ms.reg(RDI);
        else if (kind == IntrinsicKind::Calloc)
            size = ms.reg(RDI) * ms.reg(RSI);
        else
            size = ms.reg(RSI);

        Violation v = Violation::None;
        p.genPid = capTable.beginGeneration(size, &v);
        addCapUop(UopType::CapGenBegin, RDI, 0);
        if (v != Violation::None) {
            raise(v, pc, size, NoPid);
            break;
        }
        if (kind == IntrinsicKind::Realloc && ms.reg(RDI) != 0) {
            p.freePid = trackerPtr->regPid(RDI);
            Violation fv = capTable.beginFree(p.freePid, ms.reg(RDI));
            addCapUop(UopType::CapFreeBegin, RDI, 0);
            if (fv != Violation::None)
                raise(fv, pc, ms.reg(RDI), p.freePid);
        }
        break;
      }
      case IntrinsicKind::Free: {
        p.freePid = trackerPtr->regPid(RDI);
        Violation v = capTable.beginFree(p.freePid, ms.reg(RDI));
        addCapUop(UopType::CapFreeBegin, RDI, 0);
        if (v != Violation::None)
            raise(v, pc, ms.reg(RDI), p.freePid);
        break;
      }
      default:
        break;
    }
    pending.push_back(p);
}

void
System::interceptExit(IntrinsicKind kind, uint64_t pc)
{
    (void)pc;
    if (pending.empty())
        return;
    PendingAlloc p = pending.back();
    pending.pop_back();
    if (p.kind != kind)
        return;

    switch (kind) {
      case IntrinsicKind::Malloc:
      case IntrinsicKind::Calloc:
      case IntrinsicKind::Realloc: {
        uint64_t base = ms.reg(RAX);
        capTable.endGeneration(p.genPid, base);
        addCapUop(UopType::CapGenEnd, RAX, 0);
        if (base != 0)
            trackerPtr->tagRegister(RAX, p.genPid, seq);
        // calloc hands back zeroed (initialized) memory; realloc's
        // new block inherits the copied contents.
        if (base != 0 && cfg.detectUninitializedReads &&
            (kind == IntrinsicKind::Calloc ||
             kind == IntrinsicKind::Realloc))
            capTable.markAllInitialized(p.genPid);
        if (p.freePid != NoPid) {
            capTable.endFree(p.freePid);
            capCache.invalidate(p.freePid);
            addCapUop(UopType::CapFreeEnd, REG_NONE, 0);
        }
        break;
      }
      case IntrinsicKind::Free: {
        if (p.freePid != NoPid) {
            capTable.endFree(p.freePid);
            // Freeing broadcasts one invalidation so no capability
            // cache retains a stale valid bit (Section IV-C).
            capCache.invalidate(p.freePid);
        }
        addCapUop(UopType::CapFreeEnd, REG_NONE, 0);
        break;
      }
      default:
        break;
    }
}

void
System::injectCapCheck(Pid pid, uint64_t ea, uint8_t size,
                       bool is_write, RegId base_reg, uint64_t pc)
{
    unsigned extra = 0;
    if (pid != NoPid && pid != WildPid) {
        bool hit = capCache.lookup(pid);
        if (!hit)
            extra = hier.shadowAccess(capShadowAddr(pid));
        intervalPids.insert(pid);
    }

    StaticUop chk;
    chk.type = UopType::CapCheck;
    chk.src1 = base_reg;
    chk.synthetic = true;
    UopTimingIn tin;
    tin.uop = &chk;
    tin.effAddr = ea;
    tin.extraLatency = CapabilityCache::HitLatency - 1 + extra;
    corePtr->addUop(tin);
    ++result.injectedUops;
    ++result.capChecksInjected;

    CheckResult cr = capTable.check(pid, ea, size, is_write);
    if (!cr.ok()) {
        raise(cr.violation, pc, ea, pid);
        return;
    }
    if (cfg.detectUninitializedReads && pid != NoPid &&
        pid != WildPid) {
        if (is_write)
            capTable.markInitialized(pid, ea, size);
        else if (!capTable.isInitialized(pid, ea, size))
            raise(Violation::UninitializedRead, pc, ea, pid);
    }
}

void
System::emitSyntheticChecks(const MacroInst &mi, uint64_t pc)
{
    MacroBranchInfo no_branch;
    if (cfg.variant.kind == VariantKind::BinaryTranslation) {
        btCheckSequenceInto(btSeqBuf, mi.mem);
        const SyntheticMacro &m = btSeqBuf;
        corePtr->beginMacro(pc + 1, DecodePath::Complex, no_branch);
        uint64_t ea = ms.effectiveAddr(mi.mem);
        Pid pid = NoPid;
        if (mi.mem.hasBase() && !mi.mem.ripRelative)
            pid = trackerPtr->regPid(mi.mem.base);
        for (const auto &u : m.uops) {
            if (u.type == UopType::CapCheck) {
                injectCapCheck(pid, ea, mi.size, mi.isStore(),
                               mi.mem.base, pc);
            } else {
                UopEffect eff = ms.execute(u, 0);
                UopTimingIn tin;
                tin.uop = &u;
                tin.effAddr = eff.effAddr;
                corePtr->addUop(tin);
                ++result.injectedUops;
            }
        }
        corePtr->endMacro(false, 0);
        return;
    }

    // ASan: three synthetic check macros per memory operand.
    asanCheckSequenceInto(asanSeqBuf, mi.mem,
                          cfg.variant.asanShadowBase);
    const auto &macros = asanSeqBuf;
    for (size_t i = 0; i < macros.size(); ++i) {
        corePtr->beginMacro(pc + 1 + i, DecodePath::Simple, no_branch);
        for (const auto &u : macros[i].uops) {
            UopEffect eff = ms.execute(u, 0);
            UopTimingIn tin;
            tin.uop = &u;
            tin.effAddr = eff.effAddr;
            corePtr->addUop(tin);
            ++result.injectedUops;
        }
        corePtr->endMacro(false, 0);
    }

    // Functional ASan detection: poisoned bytes (redzones, freed
    // memory in quarantine) flag the access.
    uint64_t ea = ms.effectiveAddr(mi.mem);
    if (heapAlloc.isPoisoned(ea, mi.size))
        raise(Violation::OutOfBounds, pc, ea, NoPid);
}

void
System::addTouchUops(const std::vector<MemTouch> &touches)
{
    for (const auto &t : touches) {
        StaticUop u;
        u.type = t.isWrite ? UopType::Store : UopType::Load;
        if (t.isWrite)
            u.src1 = T2;
        else
            u.dst = T2;
        u.mem = memAbs(t.addr);
        u.hasMem = true;
        u.memSize = t.size;
        u.synthetic = true;
        UopTimingIn tin;
        tin.uop = &u;
        tin.effAddr = t.addr;
        corePtr->addUop(tin);
        if (t.isWrite && trackerEnabled())
            trackerPtr->clearAliasRange(t.addr, t.size);
    }
}

void
System::applyIntrinsic(IntrinsicKind kind, uint64_t pc)
{
    std::vector<MemTouch> touches;
    switch (kind) {
      case IntrinsicKind::Malloc:
        ms.setReg(RAX, heapAlloc.malloc(ms.reg(RDI), &touches));
        break;
      case IntrinsicKind::Calloc: {
        uint64_t user =
            heapAlloc.calloc(ms.reg(RDI), ms.reg(RSI), &touches);
        if (user && trackerEnabled())
            trackerPtr->clearAliasRange(user,
                                        ms.reg(RDI) * ms.reg(RSI));
        ms.setReg(RAX, user);
        break;
      }
      case IntrinsicKind::Realloc:
        ms.setReg(RAX, heapAlloc.realloc(ms.reg(RDI), ms.reg(RSI),
                                         &touches));
        break;
      case IntrinsicKind::Free: {
        // ASan's runtime validates the chunk state itself.
        if (cfg.variant.kind == VariantKind::Asan &&
            ms.reg(RDI) != 0 &&
            !heapAlloc.isLiveUserPtr(ms.reg(RDI))) {
            raise(Violation::DoubleFree, pc, ms.reg(RDI), NoPid);
            break;
        }
        heapAlloc.free(ms.reg(RDI), &touches);
        break;
      }
      case IntrinsicKind::PrintVal:
        ms.setReg(RAX, ms.reg(RDI));
        break;
      default:
        break;
    }
    addTouchUops(touches);

    // The ASan runtime does substantially more bookkeeping per
    // allocator call (poisoning, quarantine management).
    if (cfg.variant.kind == VariantKind::Asan &&
        kind != IntrinsicKind::PrintVal) {
        StaticUop filler;
        filler.type = UopType::IntAlu;
        filler.op = AluOp::Add;
        filler.dst = T0;
        filler.src1 = T0;
        filler.imm = 1;
        filler.useImm = true;
        filler.synthetic = true;
        unsigned n = Decoder::intrinsicUopCount(kind);
        for (unsigned i = 0; i < n; ++i) {
            UopTimingIn tin;
            tin.uop = &filler;
            corePtr->addUop(tin);
        }
    }
}

void
System::beginRun()
{
    result = RunResult{};
    running = true;
    seq = 0;
    macroCount = 0;
    pending.clear();
    intervalPids.clear();
    intervalMacros = 0;
    intervalSamples = 0;
    intervalPidSum = 0.0;
    pc = prog.entryPoint;
}

void
System::stepLoop(uint64_t stop_at)
{
    const bool cap_variant = usesCapabilities(cfg.variant.kind);
    const VariantKind kind = cfg.variant.kind;

    while (running) {
        if (macroCount >= cfg.maxMacroOps) {
            result.hitMacroCap = true;
            break;
        }
        if (macroCount >= stop_at) {
            pausedFlag = true;
            return;
        }
        size_t idx = prog.indexOf(pc);
        if (idx == SIZE_MAX) {
            result.hijackedControlFlow = true;
            break;
        }
        const MacroInst &mi = prog.code[idx];
        if (mi.opcode == MacroOpcode::HLT) {
            result.exited = true;
            break;
        }
        ++macroCount;

        // Figure-3 interval bookkeeping.
        if (cap_variant && ++intervalMacros >= cfg.inUseIntervalMacroOps) {
            intervalPidSum += static_cast<double>(intervalPids.size());
            ++intervalSamples;
            intervalPids.clear();
            intervalMacros = 0;
        }

        const CrackedInst &ci = crackCache[idx];
        uint64_t fallthrough = pc + InstSlotBytes;
        bool critical = cfg.variant.pcIsCritical(pc);

        // Macro-level instrumentation (binary translation / ASan)
        // precedes the instrumented instruction in fetch order.
        if (mi.isMemRef() && critical) {
            if (kind == VariantKind::BinaryTranslation) {
                if (!btTranslated[idx]) {
                    btTranslated[idx] = true;
                    corePtr->stallFetch(cfg.variant.btTranslationCycles);
                }
                emitSyntheticChecks(mi, pc);
            } else if (kind == VariantKind::Asan) {
                emitSyntheticChecks(mi, pc);
            }
        }
        if (!running)
            break;

        MacroBranchInfo bi;
        bi.isBranch = mi.isBranch();
        bi.isCall = mi.isCall();
        bi.isReturn = mi.isReturn();
        bi.isUncondDirect = mi.opcode == MacroOpcode::JMP;
        bi.isConditional = mi.opcode == MacroOpcode::JCC;
        bi.isIndirect = mi.opcode == MacroOpcode::JMP_R ||
                        mi.opcode == MacroOpcode::CALL_R;
        bi.fallthrough = fallthrough;

        corePtr->beginMacro(pc, ci.path, bi);

        // MCU interception: registered heap-function entry points.
        if (cap_variant) {
            if (auto entry_kind = msrs.entryAt(pc)) {
                interceptEntry(*entry_kind, pc);
                if (!running)
                    break;
            }
        }

        bool branch_taken = false;
        uint64_t branch_target = 0;

        for (const StaticUop &u : ci.uops) {
            ++seq;

            // Effective address before execution (checks precede
            // the access).
            uint64_t ea =
                u.hasMem ? ms.effectiveAddr(u.mem) : 0;

            // Source tags for the hardware checker.
            Pid chk_src1 = NoPid, chk_src2 = NoPid;
            if (checkerPtr) {
                if (u.src1 != REG_NONE)
                    chk_src1 = trackerPtr->regPid(u.src1);
                if (u.src2 != REG_NONE && !u.useImm)
                    chk_src2 = trackerPtr->regPid(u.src2);
                if (u.type == UopType::Lea && u.mem.hasBase())
                    chk_src1 = trackerPtr->regPid(u.mem.base);
            }

            // Capability-check injection decision (decode time).
            unsigned lsu_check_lat = 0;
            if (u.isMemRef() && cap_variant && critical) {
                Pid base_pid = NoPid;
                if (u.mem.hasBase() && !u.mem.ripRelative)
                    base_pid = trackerPtr->regPid(u.mem.base);
                switch (kind) {
                  case VariantKind::MicrocodePrediction:
                    if (base_pid != NoPid)
                        injectCapCheck(base_pid, ea, u.memSize,
                                       u.isStore(), u.mem.base, pc);
                    break;
                  case VariantKind::MicrocodeAlwaysOn:
                    injectCapCheck(base_pid, ea, u.memSize,
                                   u.isStore(), u.mem.base, pc);
                    break;
                  case VariantKind::HardwareOnly: {
                    // Checks fold into the LSU and gate the access:
                    // their full latency — including shadow-table
                    // fills on capability-cache misses — sits on the
                    // load/store critical path.
                    CheckResult cr = capTable.check(
                        base_pid, ea, u.memSize, u.isStore());
                    lsu_check_lat = CapabilityCache::HitLatency;
                    if (base_pid != NoPid && base_pid != WildPid) {
                        if (!capCache.lookup(base_pid))
                            lsu_check_lat +=
                                hier.shadowAccess(capShadowAddr(base_pid));
                        intervalPids.insert(base_pid);
                    }
                    ++result.capChecksInjected;
                    if (!cr.ok()) {
                        raise(cr.violation, pc, ea, base_pid);
                    } else if (cfg.detectUninitializedReads &&
                               base_pid != NoPid &&
                               base_pid != WildPid) {
                        if (u.isStore())
                            capTable.markInitialized(base_pid, ea,
                                                     u.memSize);
                        else if (!capTable.isInitialized(base_pid, ea,
                                                         u.memSize))
                            raise(Violation::UninitializedRead, pc,
                                  ea, base_pid);
                    }
                    break;
                  }
                  case VariantKind::BinaryTranslation:
                    // Checked by the preceding synthetic macro.
                    break;
                  default:
                    break;
                }
                if (!running)
                    break;
            }

            // ASan functional detection on the program's own access.
            if (kind == VariantKind::Asan && u.isMemRef() &&
                heapAlloc.isPoisoned(ea, u.memSize)) {
                raise(Violation::OutOfBounds, pc, ea, NoPid);
                break;
            }

            // Oracle execution.
            UopEffect eff = ms.execute(u, mi.target);
            if (eff.isBranch) {
                branch_taken = eff.branchTaken;
                branch_target = eff.branchTarget;
            }

            // Speculative pointer tracking (front end).
            unsigned extra_lat = lsu_check_lat;
            bool charge_alias_flush = false;
            if (cap_variant) {
                TrackResult tr =
                    trackerPtr->processUop(u, pc, seq, eff.effAddr);
                if (tr.aliasLookupPerformed && !tr.aliasCacheHit) {
                    // Hardware walker traverses the 5-level shadow
                    // alias table. Upper levels hit in the walker's
                    // own cache (as in page-table walkers), so only
                    // the leaf access goes out, and the walk is off
                    // the load's critical path.
                    constexpr uint64_t AliasShadowBase =
                        0xffff900000000000ull;
                    hier.shadowAccess(AliasShadowBase +
                                      ((eff.effAddr >> 6) << 6));
                    extra_lat += 2;
                }
                switch (tr.aliasOutcome) {
                  case AliasOutcome::PNA0: {
                    // The check injected under the wrong prediction
                    // becomes a zero-idiom squashed at the IQ.
                    ++result.pna0ZeroIdioms;
                    ++result.zeroIdiomChecks;
                    StaticUop zi;
                    zi.type = UopType::CapCheck;
                    zi.synthetic = true;
                    UopTimingIn ztin;
                    ztin.uop = &zi;
                    ztin.zeroIdiom = true;
                    corePtr->addUop(ztin);
                    ++result.injectedUops;
                    break;
                  }
                  case AliasOutcome::P0AN:
                    ++result.p0anFlushes;
                    charge_alias_flush = true;
                    break;
                  case AliasOutcome::PMAN:
                    ++result.pmanForwards;
                    extra_lat += 1; // forward the corrected PID
                    break;
                  default:
                    break;
                }
                if (checkerPtr && !u.synthetic &&
                    u.dst != REG_NONE && !isFpReg(u.dst) &&
                    (u.type == UopType::IntAlu ||
                     u.type == UopType::Lea ||
                     u.type == UopType::LoadImm)) {
                    checkerPtr->observe(u, chk_src1, chk_src2,
                                        tr.dstPid, eff.value);
                }
            }

            UopTimingIn tin;
            tin.uop = &u;
            tin.effAddr = eff.effAddr;
            tin.extraLatency = extra_lat;
            uint64_t complete = corePtr->addUop(tin);
            if (charge_alias_flush)
                corePtr->chargeAliasFlush(complete);

            trackerPtr->commitUpTo(seq > 64 ? seq - 64 : 0);
        }
        if (!running)
            break;

        if (mi.opcode == MacroOpcode::INTRINSIC)
            applyIntrinsic(mi.intrinsic, pc);

        // MCU interception: registered exit points (the RET of a
        // heap function).
        if (cap_variant) {
            if (auto exit_kind = msrs.exitAt(pc)) {
                interceptExit(*exit_kind, pc);
                if (!running)
                    break;
            }
        }

        corePtr->endMacro(branch_taken, branch_target);
        pc = branch_taken ? branch_target : fallthrough;
    }
}

void
System::collectResult()
{
    const VariantKind kind = cfg.variant.kind;

    Core &core = *corePtr;
    result.cycles = core.cycles();
    result.macroOps = core.macroOps();
    result.uops = core.uops();
    result.ipc = core.ipc();
    result.seconds = core.secondsAt(cfg.core.frequencyGHz);
    result.squashCyclesBranch = core.squashCyclesBranch();
    result.squashCyclesAlias = core.squashCyclesAlias();
    result.squashFraction =
        result.cycles ? static_cast<double>(core.squashCyclesTotal()) /
                            result.cycles
                      : 0.0;
    result.branchMispredicts = core.branchMispredicts();

    result.capCacheMissRate = capCache.missRate();
    result.capCacheAccesses = capCache.accesses();

    auto &tracker = *trackerPtr;
    result.aliasCacheMissRate = tracker.aliasCache().missRate();
    result.aliasCacheAccesses = tracker.aliasCache().accesses();
    result.aliasPredAccuracy = tracker.predictor().accuracy();
    result.reloadMispredictionRate =
        tracker.predictor().reloadMispredictionRate();
    result.pointerSpills = tracker.pointerSpills();
    result.pointerReloads = tracker.pointerReloads();
    result.loads = tracker.loadsSeen();

    result.dramBytes = hier.traffic().total();
    result.bandwidthMBps =
        result.seconds > 0.0
            ? static_cast<double>(result.dramBytes) / 1e6 /
                  result.seconds
            : 0.0;

    result.residentBytes = mem.residentBytes();
    if (usesCapabilities(kind)) {
        result.shadowBytes =
            capTable.storageBytes() + aliases.storageBytes();
    } else if (kind == VariantKind::Asan) {
        result.shadowBytes = result.residentBytes / 8 +
                             heapAlloc.asanOverheadBytes();
    }
    result.footprintBytes = result.residentBytes + result.shadowBytes;

    result.totalAllocations = heapAlloc.totalAllocations();
    result.maxLiveAllocations = heapAlloc.maxLiveAllocations();
    if (intervalSamples > 0)
        result.avgAllocationsInUse =
            intervalPidSum / static_cast<double>(intervalSamples);
    else
        result.avgAllocationsInUse =
            static_cast<double>(intervalPids.size());
}

RunResult
System::run()
{
    if (!pausedFlag)
        beginRun();
    pausedFlag = false;
    stepLoop(UINT64_MAX);
    collectResult();
    return result;
}

bool
System::runMacros(uint64_t n)
{
    if (!pausedFlag)
        beginRun();
    pausedFlag = false;
    uint64_t stop = n < UINT64_MAX - macroCount ? macroCount + n
                                                : UINT64_MAX;
    stepLoop(stop);
    return pausedFlag;
}

namespace
{

constexpr const char *SnapshotFormatV1 = "chex-snapshot-v1";

std::string
hashHex(uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
parseHashHex(const std::string &s, uint64_t *out)
{
    if (s.size() != 16)
        return false;
    for (char c : s) {
        bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex)
            return false;
    }
    *out = std::strtoull(s.c_str(), nullptr, 16);
    return true;
}

} // anonymous namespace

json::Value
System::saveSnapshot(std::string *err) const
{
    auto fail = [err](const char *why) {
        if (err)
            *err = why;
        return json::Value();
    };
    if (cfg.enableChecker)
        return fail("checker-enabled configs are not snapshottable");
    if (prog.code.empty())
        return fail("no program loaded");
    if (!pausedFlag)
        return fail("system is not paused mid-run");

    json::Value m = json::Value::object();
    m.set("seq", seq);
    m.set("macroCount", macroCount);
    m.set("pc", pc);

    json::Value jpend = json::Value::array();
    for (const auto &p : pending) {
        jpend.push(
            json::Value::object()
                .set("kind", static_cast<uint64_t>(p.kind))
                .set("genPid", static_cast<uint64_t>(p.genPid))
                .set("freePid", static_cast<uint64_t>(p.freePid)));
    }
    m.set("pending", std::move(jpend));

    std::vector<Pid> pids(intervalPids.begin(), intervalPids.end());
    std::sort(pids.begin(), pids.end());
    json::Value jpids = json::Value::array();
    for (Pid p : pids)
        jpids.push(static_cast<uint64_t>(p));
    m.set("intervalPids", std::move(jpids));
    m.set("intervalMacros", intervalMacros);
    m.set("intervalSamples", intervalSamples);
    m.set("intervalPidSum", intervalPidSum);

    json::Value jbt = json::Value::array();
    for (size_t i = 0; i < btTranslated.size(); ++i)
        if (btTranslated[i])
            jbt.push(static_cast<uint64_t>(i));
    m.set("btTranslated", std::move(jbt));

    // Result fields the run loop mutates in flight; everything else
    // in RunResult is derived by collectResult() at the end.
    json::Value jres = json::Value::object();
    jres.set("violationDetected", result.violationDetected);
    json::Value jviol = json::Value::array();
    for (const auto &vr : result.violations) {
        jviol.push(json::Value::object()
                       .set("kind", static_cast<uint64_t>(vr.kind))
                       .set("pc", vr.pc)
                       .set("addr", vr.addr)
                       .set("pid", static_cast<uint64_t>(vr.pid)));
    }
    jres.set("violations", std::move(jviol));
    jres.set("injectedUops", result.injectedUops);
    jres.set("capChecksInjected", result.capChecksInjected);
    jres.set("zeroIdiomChecks", result.zeroIdiomChecks);
    jres.set("pna0ZeroIdioms", result.pna0ZeroIdioms);
    jres.set("p0anFlushes", result.p0anFlushes);
    jres.set("pmanForwards", result.pmanForwards);
    m.set("result", std::move(jres));

    m.set("ms", ms.saveState());
    m.set("mem", mem.saveState());
    m.set("hier", hier.saveState());
    m.set("core", corePtr->saveState());
    m.set("heap", heapAlloc.saveState());
    m.set("capTable", capTable.saveState());
    m.set("capCache", capCache.saveState());
    m.set("aliases", aliases.saveState());
    m.set("tracker", trackerPtr->saveState());

    return json::Value::object()
        .set("format", SnapshotFormatV1)
        .set("configHash", hashHex(configHash(cfg)))
        .set("programHash", hashHex(programHash(prog)))
        .set("machine", std::move(m));
}

bool
System::restoreSnapshot(const json::Value &v, std::string *err)
{
    auto fail = [err](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    if (cfg.enableChecker)
        return fail("checker-enabled configs are not snapshottable");
    if (prog.code.empty())
        return fail("no program loaded");
    if (!v.isObject())
        return fail("snapshot is not a JSON object");
    if (json::getString(v, "format", "") != SnapshotFormatV1) {
        return fail("unrecognized snapshot format (want " +
                    std::string(SnapshotFormatV1) + ")");
    }
    uint64_t want = 0;
    if (!parseHashHex(json::getString(v, "configHash", ""), &want) ||
        want != configHash(cfg)) {
        return fail("configuration mismatch: snapshot was taken "
                    "under a different SystemConfig");
    }
    if (!parseHashHex(json::getString(v, "programHash", ""), &want) ||
        want != programHash(prog)) {
        return fail("program mismatch: snapshot was taken of a "
                    "different program");
    }
    const json::Value *jm = v.find("machine");
    if (!jm || !jm->isObject())
        return fail("missing machine section");
    const json::Value &m = *jm;

    // A failed component restore leaves the system unspecified;
    // callers recover by constructing a fresh System.
    std::vector<std::string> bad;
    auto restore = [&m, &bad](const char *name, auto &&fn) {
        const json::Value *s = m.find(name);
        if (!s || !fn(*s))
            bad.push_back(name);
    };
    restore("ms", [this](const json::Value &s) {
        return ms.restoreState(s);
    });
    restore("mem", [this](const json::Value &s) {
        return mem.restoreState(s);
    });
    restore("hier", [this](const json::Value &s) {
        return hier.restoreState(s);
    });
    restore("core", [this](const json::Value &s) {
        return corePtr->restoreState(s);
    });
    restore("heap", [this](const json::Value &s) {
        return heapAlloc.restoreState(s);
    });
    restore("capTable", [this](const json::Value &s) {
        return capTable.restoreState(s);
    });
    restore("capCache", [this](const json::Value &s) {
        return capCache.restoreState(s);
    });
    restore("aliases", [this](const json::Value &s) {
        return aliases.restoreState(s);
    });
    restore("tracker", [this](const json::Value &s) {
        return trackerPtr->restoreState(s);
    });

    // Orchestrator run state.
    seq = json::getUint(m, "seq", 0);
    macroCount = json::getUint(m, "macroCount", 0);
    pc = json::getUint(m, "pc", 0);

    pending.clear();
    const json::Value *jp = m.find("pending");
    if (jp && jp->isArray()) {
        for (const auto &e : jp->items()) {
            PendingAlloc p;
            p.kind = static_cast<IntrinsicKind>(
                json::getUint(e, "kind", 0));
            p.genPid =
                static_cast<Pid>(json::getUint(e, "genPid", NoPid));
            p.freePid =
                static_cast<Pid>(json::getUint(e, "freePid", NoPid));
            pending.push_back(p);
        }
    } else {
        bad.push_back("pending");
    }

    intervalPids.clear();
    const json::Value *jpids = m.find("intervalPids");
    if (jpids && jpids->isArray()) {
        for (const auto &e : jpids->items())
            intervalPids.insert(static_cast<Pid>(e.asUint64()));
    } else {
        bad.push_back("intervalPids");
    }
    intervalMacros = json::getUint(m, "intervalMacros", 0);
    intervalSamples = json::getUint(m, "intervalSamples", 0);
    intervalPidSum = json::getDouble(m, "intervalPidSum", 0.0);

    btTranslated.assign(prog.code.size(), false);
    const json::Value *jbt = m.find("btTranslated");
    if (jbt && jbt->isArray()) {
        for (const auto &e : jbt->items()) {
            uint64_t idx = e.asUint64();
            if (idx < btTranslated.size())
                btTranslated[idx] = true;
            else
                bad.push_back("btTranslated");
        }
    } else {
        bad.push_back("btTranslated");
    }

    result = RunResult{};
    const json::Value *jr = m.find("result");
    if (jr && jr->isObject()) {
        result.violationDetected =
            json::getBool(*jr, "violationDetected", false);
        const json::Value *jv = jr->find("violations");
        if (jv && jv->isArray()) {
            for (const auto &e : jv->items()) {
                ViolationRecord vr;
                vr.kind = static_cast<Violation>(
                    json::getUint(e, "kind", 0));
                vr.pc = json::getUint(e, "pc", 0);
                vr.addr = json::getUint(e, "addr", 0);
                vr.pid =
                    static_cast<Pid>(json::getUint(e, "pid", NoPid));
                result.violations.push_back(vr);
            }
        }
        result.injectedUops = json::getUint(*jr, "injectedUops", 0);
        result.capChecksInjected =
            json::getUint(*jr, "capChecksInjected", 0);
        result.zeroIdiomChecks =
            json::getUint(*jr, "zeroIdiomChecks", 0);
        result.pna0ZeroIdioms =
            json::getUint(*jr, "pna0ZeroIdioms", 0);
        result.p0anFlushes = json::getUint(*jr, "p0anFlushes", 0);
        result.pmanForwards = json::getUint(*jr, "pmanForwards", 0);
    } else {
        bad.push_back("result");
    }

    if (!bad.empty()) {
        std::string msg = "malformed snapshot section(s):";
        for (const auto &b : bad)
            msg += " " + b;
        return fail(msg);
    }

    running = true;
    pausedFlag = true;
    return true;
}

void
System::visitStats(const std::function<void(stats::StatGroup &)> &visit)
{
    stats::StatGroup root("system");

    stats::StatGroup core_group("core");
    Core &c = *corePtr;
    core_group.addFormula("cycles", "total cycles",
                          [&c]() { return double(c.cycles()); });
    core_group.addFormula("macroOps", "committed macro-ops",
                          [&c]() { return double(c.macroOps()); });
    core_group.addFormula("uops", "committed micro-ops",
                          [&c]() { return double(c.uops()); });
    core_group.addFormula("ipc", "micro-ops per cycle",
                          [&c]() { return c.ipc(); });
    core_group.addFormula("branchMispredicts", "branch mispredicts",
                          [&c]() {
                              return double(c.branchMispredicts());
                          });
    core_group.addFormula("squashCyclesBranch",
                          "fetch stall cycles from branch redirects",
                          [&c]() {
                              return double(c.squashCyclesBranch());
                          });
    core_group.addFormula("squashCyclesAlias",
                          "fetch stall cycles from P0AN flushes",
                          [&c]() {
                              return double(c.squashCyclesAlias());
                          });
    root.addChild(&core_group);

    stats::StatGroup cap_group("capabilities");
    cap_group.addFormula("total", "capabilities ever generated",
                         [this]() {
                             return double(capTable.totalCapabilities());
                         });
    cap_group.addFormula("live", "currently valid capabilities",
                         [this]() {
                             return double(capTable.liveCapabilities());
                         });
    cap_group.addFormula("cacheMissRate", "capability-cache misses",
                         [this]() { return capCache.missRate(); });
    cap_group.addFormula("checksInjected", "capCheck micro-ops",
                         [this]() {
                             return double(result.capChecksInjected);
                         });
    root.addChild(&cap_group);

    root.addChild(&heapAlloc.statGroup());
    root.addChild(&trackerPtr->statGroup());
    root.addChild(&trackerPtr->aliasCache().main().statGroup());
    root.addChild(&hier.l1i().statGroup());
    root.addChild(&hier.l1d().statGroup());
    root.addChild(&hier.l2().statGroup());

    visit(root);
}

void
System::dumpStats(std::ostream &os)
{
    visitStats([&os](stats::StatGroup &root) { root.dump(os); });
}

void
System::dumpStatsJson(std::ostream &os)
{
    visitStats([&os](stats::StatGroup &root) {
        root.dumpJson(os);
        os << "\n";
    });
}

} // namespace chex

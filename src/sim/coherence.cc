#include "coherence.hh"

#include "base/logging.hh"

namespace chex
{

CoherenceFabric::CoherenceFabric(unsigned cores, unsigned cap_entries,
                                 const AliasCacheConfig &alias_cfg)
{
    chex_assert(cores > 0, "need at least one core");
    for (unsigned c = 0; c < cores; ++c) {
        capCaches.push_back(
            std::make_unique<CapabilityCache>(cap_entries));
        aliasCaches.push_back(std::make_unique<VictimAugmentedCache>(
            "aliasCache.core" + std::to_string(c), alias_cfg.sets,
            alias_cfg.ways, alias_cfg.victimEntries));
    }
    capKnockouts.resize(cores);
    aliasKnockouts.resize(cores);
}

bool
CoherenceFabric::capLookup(unsigned core, Pid pid)
{
    chex_assert(core < cores(), "bad core");
    ++numCapLookups;
    bool hit = capCaches[core]->lookup(pid);
    if (!hit) {
        auto it = capKnockouts[core].find(pid);
        if (it != capKnockouts[core].end()) {
            ++capCohMisses;
            capKnockouts[core].erase(it);
        }
    }
    return hit;
}

bool
CoherenceFabric::aliasLookup(unsigned core, uint64_t addr)
{
    chex_assert(core < cores(), "bad core");
    ++numAliasLookups;
    uint64_t key = aliasKey(addr);
    bool hit = aliasCaches[core]->access(key);
    if (!hit) {
        auto it = aliasKnockouts[core].find(key);
        if (it != aliasKnockouts[core].end()) {
            ++aliasCohMisses;
            aliasKnockouts[core].erase(it);
        }
        aliasCaches[core]->insert(key);
    }
    return hit;
}

void
CoherenceFabric::aliasStore(unsigned core, uint64_t addr)
{
    chex_assert(core < cores(), "bad core");
    uint64_t key = aliasKey(addr);
    aliasCaches[core]->insert(key);
    // Keep remote alias caches coherent (Section V-C).
    for (unsigned c = 0; c < cores(); ++c) {
        if (c == core)
            continue;
        ++aliasInvals;
        if (aliasCaches[c]->invalidate(key))
            aliasKnockouts[c].insert(key);
    }
}

void
CoherenceFabric::onFree(unsigned core, Pid pid)
{
    chex_assert(core < cores(), "bad core");
    for (unsigned c = 0; c < cores(); ++c) {
        if (c == core)
            continue;
        ++capInvals;
        capCaches[c]->invalidate(pid);
        capKnockouts[c].insert(pid);
    }
    // The local cache drops the entry too (valid bit went away).
    capCaches[core]->invalidate(pid);
}

} // namespace chex

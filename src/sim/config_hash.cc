#include "config_hash.hh"

namespace chex
{
void
hashSystemConfig(TaggedHasher &h, const SystemConfig &cfg)
{
    const CoreConfig &core = cfg.core;
    h.f64("core.frequencyGHz", core.frequencyGHz);
    h.u64("core.fetchWidth", core.fetchWidth);
    h.u64("core.issueWidth", core.issueWidth);
    h.u64("core.commitWidth", core.commitWidth);
    h.u64("core.robEntries", core.robEntries);
    h.u64("core.iqEntries", core.iqEntries);
    h.u64("core.lqEntries", core.lqEntries);
    h.u64("core.sqEntries", core.sqEntries);
    h.u64("core.intRegs", core.intRegs);
    h.u64("core.fpRegs", core.fpRegs);
    h.u64("core.frontendDepth", core.frontendDepth);
    h.u64("core.redirectPenalty", core.redirectPenalty);
    h.u64("core.msromSwitchPenalty", core.msromSwitchPenalty);
    h.u64("core.intAluUnits", core.intAluUnits);
    h.u64("core.intMultUnits", core.intMultUnits);
    h.u64("core.fpAluUnits", core.fpAluUnits);
    h.u64("core.simdUnits", core.simdUnits);
    h.u64("core.loadPorts", core.loadPorts);
    h.u64("core.storePorts", core.storePorts);
    h.u64("core.capUnits", core.capUnits);

    const BranchPredictorConfig &bp = core.bpred;
    h.u64("bpred.bimodalEntries", bp.bimodalEntries);
    h.u64("bpred.taggedTables", bp.taggedTables);
    h.u64("bpred.taggedEntries", bp.taggedEntries);
    for (unsigned len : bp.historyLengths)
        h.u64("bpred.historyLength", len);
    h.u64("bpred.tagBits", bp.tagBits);
    h.u64("bpred.btbEntries", bp.btbEntries);
    h.u64("bpred.rasEntries", bp.rasEntries);

    const HierarchyConfig &mem = cfg.hierarchy;
    h.u64("hierarchy.lineBytes", mem.lineBytes);
    h.u64("hierarchy.l1Sets", mem.l1Sets);
    h.u64("hierarchy.l1Ways", mem.l1Ways);
    h.u64("hierarchy.l1Latency", mem.l1Latency);
    h.u64("hierarchy.l2Sets", mem.l2Sets);
    h.u64("hierarchy.l2Ways", mem.l2Ways);
    h.u64("hierarchy.l2Latency", mem.l2Latency);
    h.u64("hierarchy.dramLatency", mem.dramLatency);

    const VariantConfig &var = cfg.variant;
    h.u64("variant.kind", static_cast<uint64_t>(var.kind));
    h.u64("variant.haltOnViolation", var.haltOnViolation);
    h.u64("variant.criticalRegions", var.criticalRegions.size());
    for (const CodeRegion &r : var.criticalRegions) {
        h.u64("region.lo", r.lo);
        h.u64("region.hi", r.hi);
    }
    h.u64("variant.btTranslationCycles", var.btTranslationCycles);
    h.u64("variant.asanShadowBase", var.asanShadowBase);

    h.u64("capCacheEntries", cfg.capCacheEntries);

    const AliasPredictorConfig &ap = cfg.aliasPredictor;
    h.u64("aliasPredictor.entries", ap.entries);
    h.u64("aliasPredictor.blacklistEntries", ap.blacklistEntries);
    h.u64("aliasPredictor.confidenceMax", ap.confidenceMax);
    h.u64("aliasPredictor.predictThreshold", ap.predictThreshold);

    const AliasCacheConfig &ac = cfg.aliasCache;
    h.u64("aliasCache.sets", ac.sets);
    h.u64("aliasCache.ways", ac.ways);
    h.u64("aliasCache.victimEntries", ac.victimEntries);

    h.u64("maxAllocSize", cfg.maxAllocSize);
    h.u64("detectUninitializedReads", cfg.detectUninitializedReads);
    h.u64("enableChecker", cfg.enableChecker);
    h.u64("useTableIRules", cfg.useTableIRules);
    h.u64("maxMacroOps", cfg.maxMacroOps);
    h.u64("inUseIntervalMacroOps", cfg.inUseIntervalMacroOps);

    const AsanConfig &asan = cfg.asanAllocator;
    h.u64("asan.enabled", asan.enabled);
    h.u64("asan.redzoneBytes", asan.redzoneBytes);
    h.u64("asan.quarantineBytes", asan.quarantineBytes);
}

uint64_t
configHash(const SystemConfig &cfg)
{
    TaggedHasher h;
    hashSystemConfig(h, cfg);
    return h.digest();
}

} // namespace chex

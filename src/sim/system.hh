/**
 * @file
 * The full-system orchestrator: wires the out-of-order core, memory
 * hierarchy, simulated heap, shadow capability table + capability
 * cache, speculative pointer tracker, and the microcode
 * customization unit's interception/injection logic, then runs a
 * loaded program to completion under a chosen enforcement variant.
 *
 * Execution model: the correct path executes functionally in program
 * order (oracle execution); every micro-op — including injected
 * capability micro-ops and synthetic instrumentation — flows through
 * the timing core, which models the out-of-order pipeline,
 * mispredictions, and squashes.
 */

#ifndef CHEX_SIM_SYSTEM_HH
#define CHEX_SIM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/json.hh"
#include "base/stats.hh"

#include "cap/cap_cache.hh"
#include "cap/cap_table.hh"
#include "cpu/core.hh"
#include "cpu/machine_state.hh"
#include "heap/allocator.hh"
#include "isa/decoder.hh"
#include "isa/program.hh"
#include "mem/alias_table.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"
#include "tracker/checker.hh"
#include "tracker/pointer_tracker.hh"
#include "ucode/msr.hh"
#include "ucode/variant.hh"

namespace chex
{

/** Everything configurable about one simulation. */
struct SystemConfig
{
    CoreConfig core;
    HierarchyConfig hierarchy;
    VariantConfig variant;
    unsigned capCacheEntries = 64;
    AliasPredictorConfig aliasPredictor;
    AliasCacheConfig aliasCache;
    uint64_t maxAllocSize = 1ull << 30; // 1 GiB (Section VII-A)
    /**
     * Extension (off by default): flag reads of never-written
     * allocation bytes as UninitializedRead. The paper claims the
     * class (Section I) without evaluating it; enabling this adds
     * per-capability initialization bitmaps to the shadow table.
     */
    bool detectUninitializedReads = false;
    bool enableChecker = false;
    bool useTableIRules = true; // false: start near-empty (checker exp.)
    uint64_t maxMacroOps = 200'000'000;
    /** Figure-3 "allocations in use" interval (scaled from 100 M). */
    uint64_t inUseIntervalMacroOps = 100'000;
    // Quarantine scaled ~1000x down with the workloads (ASan's
    // default 256 MiB for GiB-scale heaps -> 256 KiB here).
    AsanConfig asanAllocator{true, 16, 256 << 10};
};

/** One flagged memory-safety violation. */
struct ViolationRecord
{
    Violation kind = Violation::None;
    uint64_t pc = 0;
    uint64_t addr = 0;
    Pid pid = NoPid;
};

/** Aggregated results of one run. */
struct RunResult
{
    // Outcome
    bool exited = false;
    bool violationDetected = false;
    bool hijackedControlFlow = false;
    bool hitMacroCap = false;
    std::vector<ViolationRecord> violations;

    // Timing
    uint64_t cycles = 0;
    uint64_t macroOps = 0;
    uint64_t uops = 0;
    double ipc = 0.0;
    double seconds = 0.0;
    uint64_t squashCyclesBranch = 0;
    uint64_t squashCyclesAlias = 0;
    double squashFraction = 0.0;
    uint64_t branchMispredicts = 0;

    // Capability machinery
    uint64_t capChecksInjected = 0;
    uint64_t zeroIdiomChecks = 0;
    uint64_t injectedUops = 0;
    double capCacheMissRate = 0.0;
    uint64_t capCacheAccesses = 0;

    // Alias machinery
    double aliasCacheMissRate = 0.0;
    uint64_t aliasCacheAccesses = 0;
    double aliasPredAccuracy = 1.0;
    double reloadMispredictionRate = 0.0;
    uint64_t p0anFlushes = 0;
    uint64_t pmanForwards = 0;
    uint64_t pna0ZeroIdioms = 0;
    uint64_t pointerSpills = 0;
    uint64_t pointerReloads = 0;
    uint64_t loads = 0;

    // Memory
    uint64_t dramBytes = 0;
    double bandwidthMBps = 0.0;
    uint64_t residentBytes = 0;
    uint64_t shadowBytes = 0;
    uint64_t footprintBytes = 0; // resident + shadow

    // Heap behaviour (Figure 3)
    uint64_t totalAllocations = 0;
    uint64_t maxLiveAllocations = 0;
    double avgAllocationsInUse = 0.0;

    /**
     * Attack-job bookkeeping (driver attack jobs only): whether the
     * exploit's corruption indicator was inspected after the run,
     * and whether it held the expected value. Under the insecure
     * baseline a fired indicator proves the generated exploit is
     * real; under an enforcement variant it means the corruption
     * landed before (or despite) detection.
     */
    bool indicatorChecked = false;
    bool indicatorFired = false;
};

/** The simulated system. */
class System
{
  public:
    explicit System(const SystemConfig &cfg = {});

    /** Load a program: map data, seed globals, register MSRs. */
    void load(const Program &program);

    /** Run to completion (HLT, violation, hijack, or op cap). */
    RunResult run();

    /**
     * Run at most @p n more macro-ops, then pause. A paused system
     * holds the complete mid-run machine state and can be snapshotted
     * (saveSnapshot()) or continued (run() / runMacros()); the
     * eventual results are bit-identical to an uninterrupted run.
     *
     * @return true while the system is paused (resumable); false once
     *         the run terminated (HLT, violation halt, hijack, or the
     *         macro-op cap) — a terminated run is neither resumable
     *         nor snapshottable (a later run() starts over).
     */
    bool runMacros(uint64_t n);

    /** True when a run is paused mid-stream (snapshot-eligible). */
    bool paused() const { return pausedFlag; }

    /**
     * @{ @name Checkpoint/restore (chex-snapshot-v1)
     *
     * saveSnapshot() serializes the complete machine state of a
     * *paused* run — architectural state, sparse memory, cache
     * hierarchy, core timing state, branch predictor, heap arena,
     * capability table + cache, alias table, pointer tracker, and the
     * orchestrator's own run state — into a self-describing JSON
     * document pinned to this System's configuration (configHash) and
     * loaded program (programHash).
     *
     * restoreSnapshot() is strict: it rejects (returning false and
     * naming the reason in @p err) a wrong format tag, a config or
     * program mismatch, and any malformed or geometry-incompatible
     * section. On success the system is paused at the recorded
     * point; run()/runMacros() continue from it bit-identically.
     *
     * Runs with cfg.enableChecker are not snapshottable: the checker
     * mutates its rule database in ways the snapshot does not carry.
     */
    json::Value saveSnapshot(std::string *err) const;
    bool restoreSnapshot(const json::Value &v, std::string *err);
    /** @} */

    /**
     * Dump a gem5-style statistics tree (core, heap, tracker, cache
     * hierarchy) for the most recent run.
     */
    void dumpStats(std::ostream &os);

    /**
     * The same statistics tree as dumpStats, serialized as a JSON
     * object (trailing newline included) for machine consumption.
     */
    void dumpStatsJson(std::ostream &os);

    /** @{ @name Component access (tests, benches) */
    CapabilityTable &capabilityTable() { return capTable; }
    CapabilityCache &capabilityCache() { return capCache; }
    SpeculativePointerTracker &tracker() { return *trackerPtr; }
    HeapAllocator &heap() { return heapAlloc; }
    MachineState &machine() { return ms; }
    Core &core() { return *corePtr; }
    MemoryHierarchy &hierarchy() { return hier; }
    HardwareChecker *checker() { return checkerPtr.get(); }
    AliasTable &aliasTable() { return aliases; }
    const SystemConfig &config() const { return cfg; }
    SparseMemory &memory() { return mem; }
    /** @} */

  private:
    struct PendingAlloc
    {
        IntrinsicKind kind = IntrinsicKind::None;
        Pid genPid = NoPid;   // capability being generated
        Pid freePid = NoPid;  // capability being freed (free/realloc)
    };

    /** Build the stat tree and hand it to @p visit (dump helpers). */
    void visitStats(const std::function<void(stats::StatGroup &)> &visit);

    bool trackerEnabled() const
    {
        return usesCapabilities(cfg.variant.kind);
    }

    void raise(Violation v, uint64_t pc, uint64_t addr, Pid pid);

    /** MCU interception of registered entry points. */
    void interceptEntry(IntrinsicKind kind, uint64_t pc);
    /** MCU interception of registered exit points. */
    void interceptExit(IntrinsicKind kind, uint64_t pc);

    /** Inject + evaluate one capability-check micro-op. */
    void injectCapCheck(Pid pid, uint64_t ea, uint8_t size,
                        bool is_write, RegId base_reg, uint64_t pc);

    /** Synthetic macro-level instrumentation (BT / ASan). */
    void emitSyntheticChecks(const MacroInst &mi, uint64_t pc);

    /** Host-side execution of an INTRINSIC body. */
    void applyIntrinsic(IntrinsicKind kind, uint64_t pc);

    /** Timing-only micro-op for allocator metadata traffic. */
    void addTouchUops(const std::vector<MemTouch> &touches);

    /** One cap micro-op through the timing core. */
    void addCapUop(UopType type, RegId src, unsigned extra_latency);

    /** @{ @name Run-loop phases (run() = begin + step + collect) */
    /** Reset all per-run state and point fetch at the entry point. */
    void beginRun();
    /**
     * Execute macro-ops until a terminal condition or until
     * macroCount reaches @p stop_at (which pauses the run).
     */
    void stepLoop(uint64_t stop_at);
    /** Fill the derived fields of `result` from the components. */
    void collectResult();
    /** @} */

    SystemConfig cfg;
    SparseMemory mem;
    MemoryHierarchy hier;
    std::unique_ptr<Core> corePtr;
    MachineState ms;
    HeapAllocator heapAlloc;
    CapabilityTable capTable;
    CapabilityCache capCache;
    AliasTable aliases;
    std::unique_ptr<SpeculativePointerTracker> trackerPtr;
    std::unique_ptr<HardwareChecker> checkerPtr;
    MsrFile msrs;

    Program prog;
    std::vector<CrackedInst> crackCache;
    std::vector<bool> btTranslated;

    // Reusable synthetic-instrumentation buffers: the check
    // sequences have fixed shape, so emitSyntheticChecks() patches
    // the per-call fields in place instead of rebuilding the
    // micro-op vectors for every instrumented macro-op.
    std::vector<SyntheticMacro> asanSeqBuf;
    SyntheticMacro btSeqBuf;

    // Run state
    bool running = false;
    bool pausedFlag = false;  // mid-run, resumable (snapshot point)
    uint64_t seq = 0;
    uint64_t macroCount = 0;
    uint64_t pc = 0;          // fetch frontier (macro granularity)
    std::vector<PendingAlloc> pending;
    RunResult result;

    // Figure-3 interval tracking
    std::unordered_set<Pid> intervalPids;
    uint64_t intervalMacros = 0;
    uint64_t intervalSamples = 0;
    double intervalPidSum = 0.0;
};

} // namespace chex

#endif // CHEX_SIM_SYSTEM_HH

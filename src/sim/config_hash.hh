/**
 * @file
 * Canonical content hashing of a SystemConfig.
 *
 * hashSystemConfig() walks every outcome-determining SystemConfig
 * field into a caller-provided TaggedHasher. It is the single source
 * of truth for the config byte stream: the driver's specHash() feeds
 * it into a running hasher (so the historical spec-hash encoding is
 * byte-for-byte unchanged), and configHash() digests it standalone
 * so a snapshot can pin the exact machine configuration it was taken
 * under and reject restoration into anything else.
 *
 * Adding a SystemConfig field requires extending hashSystemConfig();
 * the driver unit tests pin known inputs to guard the encoding.
 */

#ifndef CHEX_SIM_CONFIG_HASH_HH
#define CHEX_SIM_CONFIG_HASH_HH

#include <cstdint>

#include "base/fnv.hh"
#include "sim/system.hh"

namespace chex
{
/** Feed every SystemConfig field of @p cfg into @p h, tagged. */
void hashSystemConfig(TaggedHasher &h, const SystemConfig &cfg);

/** Standalone digest of @p cfg. Never returns 0. */
uint64_t configHash(const SystemConfig &cfg);

} // namespace chex

#endif // CHEX_SIM_CONFIG_HASH_HH

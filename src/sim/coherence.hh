/**
 * @file
 * Multithreaded coherence for CHEx86's in-processor shadow caches
 * (Sections IV-C and V-C): when a pointer is freed on one core,
 * invalidate requests are broadcast so no capability cache retains a
 * stale valid bit — and thanks to capability unforgeability this
 * happens exactly once per free; when a store updates a
 * spilled-pointer alias on one core, the other cores' alias caches
 * are invalidated to stay coherent.
 *
 * The fabric models the protocol over N per-core capability and
 * alias caches and accounts the traffic the paper says is "modeled
 * in all our multithreaded experiments": invalidation messages sent
 * and the coherence misses they later induce.
 */

#ifndef CHEX_SIM_COHERENCE_HH
#define CHEX_SIM_COHERENCE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cap/cap_cache.hh"
#include "mem/cache.hh"
#include "tracker/pointer_tracker.hh"

namespace chex
{

/** Per-core view plus broadcast invalidation between cores. */
class CoherenceFabric
{
  public:
    /**
     * @param cores Number of cores.
     * @param cap_entries Capability-cache capacity per core.
     * @param alias_cfg Alias-cache geometry per core.
     */
    CoherenceFabric(unsigned cores, unsigned cap_entries = 64,
                    const AliasCacheConfig &alias_cfg = {});

    /** Capability-check lookup on @p core (fills on miss). */
    bool capLookup(unsigned core, Pid pid);

    /** Alias-cache lookup on @p core (fills on miss). */
    bool aliasLookup(unsigned core, uint64_t addr);

    /** Alias created/updated by a committed store on @p core. */
    void aliasStore(unsigned core, uint64_t addr);

    /**
     * Capability freed on @p core: one broadcast invalidation to
     * every other core (unforgeability makes once sufficient).
     */
    void onFree(unsigned core, Pid pid);

    /** @{ @name Accounting */
    unsigned cores() const
    {
        return static_cast<unsigned>(capCaches.size());
    }
    uint64_t capInvalidationsSent() const { return capInvals; }
    uint64_t aliasInvalidationsSent() const { return aliasInvals; }
    /** Misses on lines/PIDs that a remote invalidation knocked out. */
    uint64_t capCoherenceMisses() const { return capCohMisses; }
    uint64_t aliasCoherenceMisses() const { return aliasCohMisses; }
    uint64_t capLookups() const { return numCapLookups; }
    uint64_t aliasLookups() const { return numAliasLookups; }
    double
    capCoherenceMissFraction() const
    {
        return numCapLookups ? static_cast<double>(capCohMisses) /
                                   numCapLookups
                             : 0.0;
    }
    /** @} */

  private:
    static uint64_t aliasKey(uint64_t addr) { return addr >> 6; }

    std::vector<std::unique_ptr<CapabilityCache>> capCaches;
    std::vector<std::unique_ptr<VictimAugmentedCache>> aliasCaches;
    // Keys knocked out of core i's caches by remote invalidations.
    std::vector<std::unordered_set<uint64_t>> capKnockouts;
    std::vector<std::unordered_set<uint64_t>> aliasKnockouts;

    uint64_t capInvals = 0;
    uint64_t aliasInvals = 0;
    uint64_t capCohMisses = 0;
    uint64_t aliasCohMisses = 0;
    uint64_t numCapLookups = 0;
    uint64_t numAliasLookups = 0;
};

} // namespace chex

#endif // CHEX_SIM_COHERENCE_HH

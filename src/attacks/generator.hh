/**
 * @file
 * Seeded adversarial attack generator: composes the heap-attack
 * primitives of the hand-written suites (overflow writes and reads
 * with varied offset/length, use-after-free load/store at varied
 * free-to-reuse distance, double free with interleaved allocations,
 * uninitialized reads of recycled memory, and fake-chunk metadata
 * forgery à la How2Heap) into complete AttackCase programs,
 * deterministically from a single splitmix64 seed. The same
 * (family, seed) pair always produces a byte-identical Program, so
 * generated attacks shard, cache, and replay like any other
 * campaign job.
 *
 * Every generated case is valid-by-construction against the
 * insecure baseline: the program computes whether the corruption
 * primitive actually landed and raises its indicator global only
 * then, so a campaign can measure baseline validity alongside
 * per-variant detection.
 */

#ifndef CHEX_ATTACKS_GENERATOR_HH
#define CHEX_ATTACKS_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack.hh"

namespace chex
{

/** Recipe families the generator can draw from. */
enum class GenFamily
{
    Mix,          // seed picks one of the concrete families below
    Overflow,     // spatial: adjacent-chunk overflow write/read
    UseAfterFree, // temporal: stale load/store after reuse
    DoubleFree,   // temporal: bin cycling with interleaved decoys
    UninitRead,   // recycled-memory read before any write
    Forge,        // fake-chunk metadata forgery (invalid free)
};

/** Short stable family tokens ("mix", "ovf", "uaf", ...). */
const std::vector<std::string> &generatorFamilies();

/** Token -> family; false when the token is unknown. */
bool generatorFamilyFromName(const std::string &name, GenFamily *out);

/** Token for a family (inverse of generatorFamilyFromName). */
std::string generatorFamilyName(GenFamily family);

/**
 * Synthesize one attack. Deterministic: the same (family, seed)
 * yields a byte-identical Program, name, and expectations. The
 * case's suite is "Generated" and its name encodes the drawn
 * recipe parameters for human triage.
 */
AttackCase generateAttack(GenFamily family, uint64_t seed);

} // namespace chex

#endif // CHEX_ATTACKS_GENERATOR_HH

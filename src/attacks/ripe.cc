#include "ripe.hh"

#include "base/intmath.hh"
#include "base/logging.hh"
#include "isa/assembler.hh"

namespace chex
{

namespace
{

constexpr uint64_t Secret = 0x11223344aabbccddull;

/** User-pointer to user-pointer distance for adjacent heap chunks
 *  (mirrors HeapAllocator::chunkSizeFor with ASan disabled). */
uint64_t
heapChunkDistance(uint64_t user_size)
{
    return std::max<uint64_t>(roundUp(user_size + 16, 16), 32);
}

std::string
caseName(const RipeParams &p)
{
    std::string name;
    name += p.location == RipeLocation::Heap ? "heap" : "data";
    name += p.access == RipeAccess::Write ? "-write" : "-read";
    name += p.technique == RipeTechnique::Direct ? "-direct"
                                                 : "-indirect";
    switch (p.target) {
      case RipeTarget::FuncPtr: name += "-funcptr"; break;
      case RipeTarget::DataPtr: name += "-dataptr"; break;
      case RipeTarget::HeapMetadata: name += "-heapmeta"; break;
      case RipeTarget::VictimVar: name += "-victim"; break;
    }
    switch (p.abuse) {
      case RipeAbuse::LoopStore: name += "-loop"; break;
      case RipeAbuse::Strcpy: name += "-strcpy"; break;
      case RipeAbuse::Memcpy: name += "-memcpy"; break;
    }
    name += "-sz" + std::to_string(p.bufferSize);
    name += "-ov" + std::to_string(p.overflowBytes);
    return name;
}

} // anonymous namespace

AttackCase
buildRipeCase(const RipeParams &p)
{
    AttackCase out;
    out.suite = "RIPE";
    out.name = caseName(p);
    out.expected = Violation::OutOfBounds;

    Assembler as;
    const bool heap = p.location == RipeLocation::Heap;
    const uint64_t dist = heap ? heapChunkDistance(p.bufferSize)
                               : roundUp(p.bufferSize, 8);
    const uint64_t total = dist + 8 + p.overflowBytes;

    // Globals. Order matters: buf then victim must be adjacent for
    // the Data location; padding absorbs long overflows.
    uint64_t buf_addr = as.addGlobal("ripe_buf", p.bufferSize);
    (void)buf_addr;
    uint64_t victim_addr = as.addGlobal("ripe_victim", 8);
    as.addGlobal("ripe_padding", 1024);
    uint64_t benign_addr = as.addGlobal("ripe_benign_obj", 8);
    uint64_t hijack_addr = as.addGlobal("ripe_hijack", 8);
    uint64_t dst_addr = as.addGlobal("ripe_dst", 4096);
    uint64_t ind_addr = as.addGlobal("ripe_indicator", 8);
    (void)benign_addr;
    (void)dst_addr;

    uint64_t pool_buf = as.poolSlotFor("ripe_buf");
    uint64_t pool_victim = as.poolSlotFor("ripe_victim");
    uint64_t pool_benign = as.poolSlotFor("ripe_benign_obj");
    uint64_t pool_hijack = as.poolSlotFor("ripe_hijack");
    uint64_t pool_dst = as.poolSlotFor("ripe_dst");
    uint64_t pool_ind = as.poolSlotFor("ripe_indicator");

    // Layout: [0] jmp main, then the hijack gadget and the benign
    // callee at known addresses (both reachable via the corrupted
    // function pointer).
    auto main_label = as.newLabel();
    as.jmp(main_label);
    uint64_t gadget_addr = layout::CodeBase + as.size() * InstSlotBytes;
    {
        // gadget: indicator = 1; exit
        as.movrm(R11, memRip(pool_ind));
        as.movmi(memAt(R11, 0), 1, 8);
        as.hlt();
    }
    uint64_t benign_fn_addr = layout::CodeBase + as.size() * InstSlotBytes;
    {
        as.ret();
    }

    as.bind(main_label);
    as.setEntry(main_label);

    // ---- Obtain buf (R12) and victim (R13) ----
    if (heap) {
        as.movri(RDI, static_cast<int64_t>(p.bufferSize));
        as.call(IntrinsicKind::Malloc);
        as.movrr(R12, RAX);
        as.movri(RDI, 8);
        as.call(IntrinsicKind::Malloc);
        as.movrr(R13, RAX);
        as.movri(RDI, 1024); // padding chunk for long overflows
        as.call(IntrinsicKind::Malloc);
    } else {
        as.movrm(R12, memRip(pool_buf));
        as.movrm(R13, memRip(pool_victim));
        (void)victim_addr;
    }

    // ---- Seed the target slot (R15 remembers the original) ----
    switch (p.target) {
      case RipeTarget::FuncPtr:
        as.movri(RCX, static_cast<int64_t>(benign_fn_addr));
        as.movmr(memAt(R13, 0), RCX);
        as.movrr(R15, RCX);
        break;
      case RipeTarget::DataPtr:
        as.movrm(RCX, memRip(pool_benign));
        as.movmr(memAt(R13, 0), RCX);
        as.movrr(R15, RCX);
        break;
      case RipeTarget::HeapMetadata:
      case RipeTarget::VictimVar:
        as.movri(RCX, static_cast<int64_t>(Secret));
        as.movmr(memAt(R13, 0), RCX);
        as.movrr(R15, RCX);
        break;
    }
    if (p.target == RipeTarget::HeapMetadata) {
        // Original header of the adjacent chunk: size 32 | IN_USE |
        // PREV_INUSE (host-computed; reading it would itself be OOB).
        as.movri(R15, 35);
    }

    // ---- Fill buf in-bounds (read leaks need nonzero content) ----
    {
        auto fill = as.newLabel();
        auto fill_done = as.newLabel();
        as.movri(RCX, 0xAA);
        as.movri(R10, 0);
        as.bind(fill);
        as.cmpri(R10, static_cast<int64_t>(p.bufferSize));
        as.jcc(CondCode::AE, fill_done);
        as.movmr(memAt(R12, 0, R10, 1), RCX, 1);
        as.addri(R10, 1);
        as.jmp(fill);
        as.bind(fill_done);
    }

    // Value the overflow plants in the corrupted slot.
    uint64_t planted = 0;
    if (p.target == RipeTarget::FuncPtr)
        planted = gadget_addr;
    else if (p.technique == RipeTechnique::Indirect)
        planted = hijack_addr;

    // ---- The overflow itself ----
    if (p.access == RipeAccess::Write) {
        switch (p.abuse) {
          case RipeAbuse::LoopStore: {
            auto loop = as.newLabel();
            auto done = as.newLabel();
            as.movri(RCX, 0xCC);
            as.movri(R10, 0);
            as.bind(loop);
            as.cmpri(R10, static_cast<int64_t>(total));
            as.jcc(CondCode::AE, done);
            as.movmr(memAt(R12, 0, R10, 1), RCX, 1);
            as.addri(R10, 1);
            as.jmp(loop);
            as.bind(done);
            if (planted != 0) {
                as.movri(RAX, static_cast<int64_t>(planted));
                as.movmr(memAt(R12, static_cast<int64_t>(dist)), RAX);
            }
            break;
          }
          case RipeAbuse::Strcpy:
          case RipeAbuse::Memcpy: {
            // Host-built payload: 0xCC fill, the planted pointer at
            // the slot offset, NUL terminator for strcpy.
            std::vector<uint8_t> payload(total + 8, 0xCC);
            if (planted != 0) {
                for (unsigned b = 0; b < 8; ++b)
                    payload[dist + b] =
                        static_cast<uint8_t>(planted >> (8 * b));
            }
            payload.back() = 0;
            uint64_t payload_addr =
                as.addGlobal("ripe_payload", payload.size());
            as.setInitData(payload_addr, payload);
            uint64_t pool_payload = as.poolSlotFor("ripe_payload");

            as.movrr(RDI, R12);
            as.movrm(RSI, memRip(pool_payload));
            if (p.abuse == RipeAbuse::Strcpy) {
                as.call(IntrinsicKind::Strcpy);
            } else {
                as.movri(RDX, static_cast<int64_t>(total));
                as.call(IntrinsicKind::Memcpy);
            }
            break;
          }
        }
    } else {
        // Read overruns: leak the adjacent secret.
        switch (p.abuse) {
          case RipeAbuse::LoopStore: {
            // Loop-read past the end, then a quad read of the secret.
            auto loop = as.newLabel();
            auto done = as.newLabel();
            as.movri(RDX, 0);
            as.movri(R10, 0);
            as.bind(loop);
            as.cmpri(R10, static_cast<int64_t>(total));
            as.jcc(CondCode::AE, done);
            as.movrm(RCX, memAt(R12, 0, R10, 1), 1);
            as.addrr(RDX, RCX);
            as.addri(R10, 1);
            as.jmp(loop);
            as.bind(done);
            as.movrm(RDX, memAt(R12, static_cast<int64_t>(dist)));
            break;
          }
          case RipeAbuse::Strcpy:
            as.movrm(RDI, memRip(pool_dst));
            as.movrr(RSI, R12);
            as.call(IntrinsicKind::Strcpy);
            as.movrm(RCX, memRip(pool_dst));
            as.movrm(RDX, memAt(RCX, static_cast<int64_t>(dist)), 4);
            break;
          case RipeAbuse::Memcpy:
            as.movrm(RDI, memRip(pool_dst));
            as.movrr(RSI, R12);
            as.movri(RDX, static_cast<int64_t>(total));
            as.call(IntrinsicKind::Memcpy);
            as.movrm(RCX, memRip(pool_dst));
            as.movrm(RDX, memAt(RCX, static_cast<int64_t>(dist)));
            break;
        }
    }

    // ---- Post-exploit verification -> indicator ----
    as.movri(RAX, 0);
    auto no_success = as.newLabel();
    if (p.access == RipeAccess::Read) {
        // Did we leak the secret?
        uint64_t expect = p.abuse == RipeAbuse::Strcpy
                              ? (Secret & 0xffffffffull)
                              : Secret;
        as.movri(RCX, static_cast<int64_t>(expect));
        as.cmprr(RDX, RCX);
        as.jcc(CondCode::NE, no_success);
        as.movri(RAX, 1);
        as.bind(no_success);
    } else if (p.target == RipeTarget::FuncPtr) {
        // Hijack: calling through the corrupted pointer reaches the
        // gadget (which sets the indicator and exits) instead of the
        // benign callee.
        as.movrm(RCX, memAt(R13, 0));
        as.callr(RCX);
        as.bind(no_success); // benign path: indicator stays 0
    } else if (p.technique == RipeTechnique::Indirect &&
               p.target == RipeTarget::DataPtr) {
        // Write through the corrupted data pointer, then confirm the
        // hijack target was modified.
        as.movrm(RCX, memAt(R13, 0));
        as.movmi(memAt(RCX, 0), 0x41, 8);
        as.movrm(RBX, memRip(pool_hijack));
        as.movrm(RDX, memAt(RBX, 0));
        as.cmpri(RDX, 0x41);
        as.jcc(CondCode::NE, no_success);
        as.movri(RAX, 1);
        as.bind(no_success);
    } else {
        // Direct corruption: did the adjacent value change?
        as.movrm(RDX, memAt(R13, p.target == RipeTarget::HeapMetadata
                                     ? -8
                                     : 0));
        as.cmprr(RDX, R15);
        as.jcc(CondCode::EQ, no_success);
        as.movri(RAX, 1);
        as.bind(no_success);
    }
    as.movrm(R11, memRip(pool_ind));
    as.movmr(memAt(R11, 0), RAX);
    as.hlt();

    out.program = as.finalize();
    out.indicatorAddr = ind_addr;
    return out;
}

std::vector<AttackCase>
ripeSweep()
{
    std::vector<AttackCase> cases;
    const uint64_t buffer_sizes[] = {64};
    const uint64_t overflows[] = {0, 56, 248};

    for (auto loc : {RipeLocation::Heap, RipeLocation::Data}) {
        for (auto acc : {RipeAccess::Write, RipeAccess::Read}) {
            for (auto tech :
                 {RipeTechnique::Direct, RipeTechnique::Indirect}) {
                for (auto tgt :
                     {RipeTarget::FuncPtr, RipeTarget::DataPtr,
                      RipeTarget::HeapMetadata,
                      RipeTarget::VictimVar}) {
                    for (auto abuse :
                         {RipeAbuse::LoopStore, RipeAbuse::Strcpy,
                          RipeAbuse::Memcpy}) {
                        for (uint64_t bs : buffer_sizes) {
                            for (uint64_t ov : overflows) {
                                // Validity filters (RIPE marks the
                                // analogous combinations
                                // "not possible").
                                if (acc == RipeAccess::Read &&
                                    (tech != RipeTechnique::Direct ||
                                     tgt != RipeTarget::VictimVar))
                                    continue;
                                if (acc == RipeAccess::Read &&
                                    abuse == RipeAbuse::Strcpy &&
                                    loc == RipeLocation::Heap)
                                    continue;
                                if (tgt == RipeTarget::HeapMetadata &&
                                    (loc != RipeLocation::Heap ||
                                     acc != RipeAccess::Write ||
                                     tech != RipeTechnique::Direct))
                                    continue;
                                if (tech == RipeTechnique::Indirect &&
                                    tgt == RipeTarget::VictimVar)
                                    continue;
                                if (tech == RipeTechnique::Indirect &&
                                    tgt == RipeTarget::HeapMetadata)
                                    continue;

                                RipeParams p;
                                p.location = loc;
                                p.access = acc;
                                p.technique = tech;
                                p.target = tgt;
                                p.abuse = abuse;
                                p.bufferSize = bs;
                                p.overflowBytes = ov;
                                cases.push_back(buildRipeCase(p));
                            }
                        }
                    }
                }
            }
        }
    }
    return cases;
}

} // namespace chex

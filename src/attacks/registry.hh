/**
 * @file
 * Central attack registry: every exploit case — hand-written or
 * generated — is addressable by a stable string ID, mirroring
 * findProfileByName() for workloads. Hand-written cases use
 * "<suite>/<case>" ("how2heap/fastbin_dup", "ripe/heap-write-..."),
 * generated cases use "gen/<family>" plus the 64-bit seed carried
 * by the job (the seed is the generator input, so one ID names a
 * whole seedable family). This is what lets a JobSpec reference an
 * attack by name, fold it into the spec hash, and reconstruct it
 * bit-identically for caching, sharding, and replay.
 */

#ifndef CHEX_ATTACKS_REGISTRY_HH
#define CHEX_ATTACKS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack.hh"
#include "attacks/generator.hh"

namespace chex
{

/** One hand-written suite with its stable ID token. */
struct AttackSuite
{
    std::string name;  // ID token: "ripe" / "asan" / "how2heap"
    std::string title; // human-readable ("RIPE-style sweep")
    std::vector<AttackCase> cases;
};

/**
 * The three hand-written suites, built once. Generated attacks are
 * not listed here (they are a seed-indexed family, not a finite
 * set); address them as "gen/<family>".
 */
const std::vector<AttackSuite> &attackSuites();

/** Stable ID for a hand-written case: "<suite-token>/<name>". */
std::string attackCaseId(const AttackCase &c);

/** True for "gen/<family>" IDs (seed-dependent attacks). */
bool isGeneratedAttackId(const std::string &id);

/**
 * Hand-written case lookup by ID; nullptr when unknown (including
 * for generated IDs — those need a seed, use findAttackByName).
 */
const AttackCase *findSuiteCase(const std::string &id);

/**
 * Resolve any attack ID to a concrete case. For "gen/<family>" the
 * case is synthesized from @p seed (deterministically); for
 * hand-written IDs the seed is ignored. Returns false with a
 * diagnostic in @p err (when non-null) if the ID is unknown.
 */
bool findAttackByName(const std::string &id, uint64_t seed,
                      AttackCase *out, std::string *err = nullptr);

} // namespace chex

#endif // CHEX_ATTACKS_REGISTRY_HH

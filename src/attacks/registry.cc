#include "registry.hh"

#include <map>
#include <stdexcept>

#include "attacks/asan_suite.hh"
#include "attacks/how2heap.hh"
#include "attacks/ripe.hh"

namespace chex
{

namespace
{

constexpr char GenPrefix[] = "gen/";

std::string
suiteToken(const std::string &suite)
{
    if (suite == "RIPE")
        return "ripe";
    if (suite == "ASanSuite")
        return "asan";
    if (suite == "How2Heap")
        return "how2heap";
    if (suite == "Generated")
        return "gen";
    throw std::logic_error("unknown attack suite: " + suite);
}

/** ID -> (suite index, case index), built once over attackSuites(). */
const std::map<std::string, std::pair<size_t, size_t>> &
caseIndex()
{
    static const std::map<std::string, std::pair<size_t, size_t>>
        index = [] {
            std::map<std::string, std::pair<size_t, size_t>> m;
            const auto &suites = attackSuites();
            for (size_t s = 0; s < suites.size(); ++s) {
                for (size_t c = 0; c < suites[s].cases.size(); ++c) {
                    const std::string id =
                        attackCaseId(suites[s].cases[c]);
                    if (!m.emplace(id, std::make_pair(s, c)).second)
                        throw std::logic_error(
                            "duplicate attack case ID: " + id);
                }
            }
            return m;
        }();
    return index;
}

} // anonymous namespace

const std::vector<AttackSuite> &
attackSuites()
{
    static const std::vector<AttackSuite> suites = [] {
        std::vector<AttackSuite> s;
        s.push_back({"ripe", "RIPE-style sweep", ripeSweep()});
        s.push_back({"asan", "ASan test suite", asanSuite()});
        s.push_back({"how2heap", "How2Heap", how2heapSuite()});
        return s;
    }();
    return suites;
}

std::string
attackCaseId(const AttackCase &c)
{
    return suiteToken(c.suite) + "/" + c.name;
}

bool
isGeneratedAttackId(const std::string &id)
{
    return id.compare(0, sizeof(GenPrefix) - 1, GenPrefix) == 0;
}

const AttackCase *
findSuiteCase(const std::string &id)
{
    const auto &index = caseIndex();
    auto it = index.find(id);
    if (it == index.end())
        return nullptr;
    return &attackSuites()[it->second.first]
                .cases[it->second.second];
}

bool
findAttackByName(const std::string &id, uint64_t seed,
                 AttackCase *out, std::string *err)
{
    if (isGeneratedAttackId(id)) {
        const std::string family = id.substr(sizeof(GenPrefix) - 1);
        GenFamily f;
        if (!generatorFamilyFromName(family, &f)) {
            if (err)
                *err = "unknown generator family '" + family +
                       "' in attack ID '" + id + "'";
            return false;
        }
        *out = generateAttack(f, seed);
        return true;
    }
    const AttackCase *c = findSuiteCase(id);
    if (!c) {
        if (err)
            *err = "unknown attack ID '" + id + "'";
        return false;
    }
    *out = *c;
    return true;
}

} // namespace chex

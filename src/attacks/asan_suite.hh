/**
 * @file
 * An AddressSanitizer-test-suite-style collection of unit violation
 * programs (Section VI: "unit test cases that test the ability of
 * the address sanitizer to flag typical memory safety violations"),
 * including the two resource-exhaustion cases ("allocator returns
 * NULL" and "sizes") that CHEx86 flags via the capGen.Begin
 * maximum-allocation check.
 */

#ifndef CHEX_ATTACKS_ASAN_SUITE_HH
#define CHEX_ATTACKS_ASAN_SUITE_HH

#include <vector>

#include "attacks/attack.hh"

namespace chex
{

/** All ASan-style unit violation cases. */
std::vector<AttackCase> asanSuite();

} // namespace chex

#endif // CHEX_ATTACKS_ASAN_SUITE_HH

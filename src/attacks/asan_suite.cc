#include "asan_suite.hh"

#include "isa/assembler.hh"

namespace chex
{

namespace
{

/** Shared prologue: malloc(size) -> R12, indicator pool -> R11. */
struct CaseBuilder
{
    Assembler as;
    uint64_t indAddr;
    uint64_t poolInd;

    CaseBuilder()
    {
        indAddr = as.addGlobal("asan_indicator", 8);
        poolInd = as.poolSlotFor("asan_indicator");
    }

    void
    mallocTo(RegId dst, int64_t size)
    {
        as.movri(RDI, size);
        as.call(IntrinsicKind::Malloc);
        as.movrr(dst, RAX);
    }

    void
    freeReg(RegId src)
    {
        as.movrr(RDI, src);
        as.call(IntrinsicKind::Free);
    }

    void
    indicate(int64_t value)
    {
        as.movrm(R11, memRip(poolInd));
        as.movmi(memAt(R11, 0), value, 8);
    }

    AttackCase
    finish(const char *name, Violation expected,
           uint64_t indicator_expect = 1)
    {
        as.hlt();
        AttackCase out;
        out.suite = "ASanSuite";
        out.name = name;
        out.expected = expected;
        out.indicatorAddr = indAddr;
        out.indicatorExpect = indicator_expect;
        out.program = as.finalize();
        return out;
    }
};

} // anonymous namespace

std::vector<AttackCase>
asanSuite()
{
    std::vector<AttackCase> cases;

    // 1. heap_oob_write: write one element past the end.
    {
        CaseBuilder b;
        b.mallocTo(R12, 64);
        b.as.movmi(memAt(R12, 64), 0x41, 8);
        b.indicate(1);
        cases.push_back(b.finish("heap_oob_write",
                                 Violation::OutOfBounds));
    }

    // 2. heap_oob_read.
    {
        CaseBuilder b;
        b.mallocTo(R12, 64);
        b.as.movrm(RCX, memAt(R12, 72));
        b.indicate(1);
        cases.push_back(b.finish("heap_oob_read",
                                 Violation::OutOfBounds));
    }

    // 3. heap_underflow_write: write before the block.
    {
        CaseBuilder b;
        b.mallocTo(R12, 64);
        b.as.movmi(memAt(R12, -8), 0x41, 8);
        b.indicate(1);
        cases.push_back(b.finish("heap_underflow_write",
                                 Violation::OutOfBounds));
    }

    // 4. tail_magic: one-byte overflow (off-by-one).
    {
        CaseBuilder b;
        b.mallocTo(R12, 33);
        b.as.movmi(memAt(R12, 33), 0x41, 1);
        b.indicate(1);
        cases.push_back(b.finish("tail_magic", Violation::OutOfBounds));
    }

    // 5. use_after_free_read.
    {
        CaseBuilder b;
        b.mallocTo(R12, 128);
        b.freeReg(R12);
        b.as.movrm(RCX, memAt(R12, 0));
        b.indicate(1);
        cases.push_back(b.finish("use_after_free_read",
                                 Violation::UseAfterFree));
    }

    // 6. use_after_free_write ("UAF with RB distance").
    {
        CaseBuilder b;
        b.mallocTo(R12, 128);
        b.freeReg(R12);
        // Allocate some unrelated blocks in between (distance).
        b.mallocTo(R13, 64);
        b.mallocTo(R13, 64);
        b.as.movmi(memAt(R12, 16), 0x42, 8);
        b.indicate(1);
        cases.push_back(b.finish("use_after_free_write",
                                 Violation::UseAfterFree));
    }

    // 7. double_free.
    {
        CaseBuilder b;
        b.mallocTo(R12, 64);
        b.freeReg(R12);
        b.freeReg(R12);
        b.indicate(1);
        cases.push_back(b.finish("double_free", Violation::DoubleFree));
    }

    // 8. invalid_free_interior: free(ptr + 8).
    {
        CaseBuilder b;
        b.mallocTo(R12, 64);
        b.as.movrr(RDI, R12);
        b.as.addri(RDI, 8);
        b.as.call(IntrinsicKind::Free);
        b.indicate(1);
        cases.push_back(b.finish("invalid_free_interior",
                                 Violation::InvalidFree));
    }

    // 9. invalid_free_stack: free a stack address (PID 0).
    {
        CaseBuilder b;
        b.as.subri(RSP, 64);
        b.as.lea(RDI, memAt(RSP, 16));
        b.as.call(IntrinsicKind::Free);
        b.indicate(1);
        cases.push_back(b.finish("invalid_free_stack",
                                 Violation::InvalidFree));
    }

    // 10. invalid_free_wild: free a constant integer address.
    {
        CaseBuilder b;
        b.as.movri(RDI, 0x7fff1000);
        b.as.call(IntrinsicKind::Free);
        b.indicate(1);
        cases.push_back(b.finish("invalid_free_wild",
                                 Violation::InvalidFree));
    }

    // 11. allocator_returns_null: resource-exhaustion anchor — a
    // prohibitively large allocation (> 1 GiB cap).
    {
        CaseBuilder b;
        b.as.movri(RDI, 3ll << 30);
        b.as.call(IntrinsicKind::Malloc);
        b.indicate(1);
        cases.push_back(b.finish("allocator_returns_null",
                                 Violation::OversizeAlloc));
    }

    // 12. sizes: repeated huge-allocation heap-spray attempt.
    {
        CaseBuilder b;
        auto loop = b.as.newLabel();
        b.as.movri(RBX, 4);
        b.as.bind(loop);
        b.as.movri(RDI, 2ll << 30);
        b.as.call(IntrinsicKind::Malloc);
        b.as.subri(RBX, 1);
        b.as.cmpri(RBX, 0);
        b.as.jcc(CondCode::NE, loop);
        b.indicate(1);
        cases.push_back(b.finish("sizes", Violation::OversizeAlloc));
    }

    // 13. calloc_overflow: n * size wraps; the capability is sized
    // by the true request, so touching the block is out of bounds.
    {
        CaseBuilder b;
        b.as.movri(RDI, (1ll << 32) + 1);
        b.as.movri(RSI, 1ll << 31);
        b.as.call(IntrinsicKind::Calloc);
        cases.push_back(b.finish("calloc_overflow",
                                 Violation::OversizeAlloc, 0));
    }

    // 14. realloc_uaf: use the stale pointer after realloc moves
    // the block.
    {
        CaseBuilder b;
        b.mallocTo(R12, 64);
        b.as.movrr(RDI, R12);
        b.as.movri(RSI, 4096);
        b.as.call(IntrinsicKind::Realloc);
        b.as.movrr(R13, RAX);       // new block
        b.as.movmi(memAt(R12, 0), 0x43, 8); // stale pointer!
        b.indicate(1);
        cases.push_back(b.finish("realloc_uaf",
                                 Violation::UseAfterFree));
    }

    // 15. realloc_shrink_oob: access beyond the shrunk size.
    {
        CaseBuilder b;
        b.mallocTo(R12, 256);
        b.as.movrr(RDI, R12);
        b.as.movri(RSI, 32);
        b.as.call(IntrinsicKind::Realloc);
        b.as.movrr(R12, RAX);
        b.as.movmi(memAt(R12, 128), 0x44, 8);
        b.indicate(1);
        cases.push_back(b.finish("realloc_shrink_oob",
                                 Violation::OutOfBounds));
    }

    // 16. wild_deref: dereference a constant integer address
    // (Table I rule MOVI: PID(-1)).
    {
        CaseBuilder b;
        b.as.movri(RCX, 0x7fff2000);
        b.as.movrm(RDX, memAt(RCX, 0));
        b.indicate(1);
        cases.push_back(b.finish("wild_deref",
                                 Violation::WildPointer));
    }

    // 17. zero_malloc_oob: malloc(0) gives a zero-bounds
    // capability; any dereference is out of bounds.
    {
        CaseBuilder b;
        b.mallocTo(R12, 0);
        b.as.movmi(memAt(R12, 0), 0x45, 8);
        b.indicate(1);
        cases.push_back(b.finish("zero_malloc_oob",
                                 Violation::OutOfBounds));
    }

    // 18. global_oob_write: overflow a global data object (the
    // symbol-table-seeded capability catches it).
    {
        CaseBuilder b;
        uint64_t g = b.as.addGlobal("asan_global", 40);
        (void)g;
        uint64_t pool_g = b.as.poolSlotFor("asan_global");
        b.as.movrm(R12, memRip(pool_g));
        b.as.movmi(memAt(R12, 40), 0x46, 8);
        b.indicate(1);
        cases.push_back(b.finish("global_oob_write",
                                 Violation::OutOfBounds));
    }

    return cases;
}

} // namespace chex

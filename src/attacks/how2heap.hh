/**
 * @file
 * How2Heap-style heap-metadata exploits (shellphish's CTF corpus):
 * 18 distinct evasive exploits that corrupt allocator metadata via
 * spatial and temporal violations. Because the simulated heap keeps
 * real chunk headers and fd links in simulated memory, these
 * exploits genuinely work against the insecure baseline (e.g.
 * malloc returns an attacker-chosen or overlapping pointer), and
 * CHEx86 flags each at its anchor violation — double free, invalid
 * free, use-after-free, or out-of-bounds — regardless of the
 * degree of allocator evasion (Section VII-A).
 */

#ifndef CHEX_ATTACKS_HOW2HEAP_HH
#define CHEX_ATTACKS_HOW2HEAP_HH

#include <vector>

#include "attacks/attack.hh"

namespace chex
{

/** The 18 How2Heap-style exploit cases. */
std::vector<AttackCase> how2heapSuite();

} // namespace chex

#endif // CHEX_ATTACKS_HOW2HEAP_HH

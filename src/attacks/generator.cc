#include "generator.hh"

#include <stdexcept>

#include "base/random.hh"
#include "isa/assembler.hh"

namespace chex
{

namespace
{

/**
 * Marker value planted (or hunted) by generated exploits. Chosen
 * with all-distinct bytes so no single-byte fill can collide with
 * it, and with the top bit clear so it round-trips through movri's
 * signed immediate.
 */
constexpr uint64_t Secret = 0x51e9d3a7c0ffee01ull;

/** Mirror of HeapAllocator::chunkSizeFor (non-ASan layout). */
constexpr uint64_t
chunkFor(uint64_t user_size)
{
    uint64_t sz = (user_size + 16 + 15) & ~15ull;
    return sz < 32 ? 32 : sz;
}

constexpr int64_t
InUseHeader(int64_t chunk_size)
{
    return chunk_size | 3; // size | IN_USE | PREV_INUSE
}

/** Builder shared by every recipe (mirrors the How2Heap one). */
struct Gen
{
    Assembler as;
    uint64_t indAddr;
    uint64_t poolInd;
    std::string tag;

    Gen()
    {
        indAddr = as.addGlobal("gen_indicator", 8);
        poolInd = as.poolSlotFor("gen_indicator");
    }

    void
    mallocTo(RegId dst, int64_t size)
    {
        as.movri(RDI, size);
        as.call(IntrinsicKind::Malloc);
        if (dst != RAX)
            as.movrr(dst, RAX);
    }

    void
    freeReg(RegId src)
    {
        if (src != RDI)
            as.movrr(RDI, src);
        as.call(IntrinsicKind::Free);
    }

    void
    storeIndicator(RegId value)
    {
        as.movrm(R11, memRip(poolInd));
        as.movmr(memAt(R11, 0), value);
    }

    /** indicator = (x == y) ? 1 : 0 */
    void
    indicateIfEqual(RegId x, RegId y)
    {
        auto skip = as.newLabel();
        as.movri(RAX, 0);
        as.cmprr(x, y);
        as.jcc(CondCode::NE, skip);
        as.movri(RAX, 1);
        as.bind(skip);
        storeIndicator(RAX);
    }

    /** indicator = (x != y) ? 1 : 0 */
    void
    indicateIfDiffers(RegId x, RegId y)
    {
        auto skip = as.newLabel();
        as.movri(RAX, 1);
        as.cmprr(x, y);
        as.jcc(CondCode::NE, skip);
        as.movri(RAX, 0);
        as.bind(skip);
        storeIndicator(RAX);
    }

    AttackCase
    finish(Violation expected)
    {
        as.hlt();
        AttackCase out;
        out.suite = "Generated";
        out.name = tag;
        out.expected = expected;
        out.indicatorAddr = indAddr;
        out.program = as.finalize();
        return out;
    }
};

/**
 * Draw a small-bin user size: chunk class 32 + 16k for k in
 * [0, 12], i.e. user sizes 16..208 in 16-byte steps. Classes are
 * exact bins in the allocator, so two draws collide in a bin iff
 * the sizes are equal.
 */
uint64_t
pickUser(Random &rng)
{
    return 16 + 16 * rng.uniform(0, 12);
}

/** A user size from any small-bin class except @p user's. */
uint64_t
pickOtherUser(Random &rng, uint64_t user)
{
    uint64_t k = (user - 16) / 16;
    uint64_t other = rng.uniform(0, 11);
    if (other >= k)
        ++other;
    return 16 + 16 * other;
}

/**
 * Emit @p n decoy allocations from bins other than @p user's:
 * they bump the wilderness without disturbing the class under
 * attack, varying the free-to-reuse distance.
 */
void
emitDecoys(Gen &g, Random &rng, uint64_t user, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        g.mallocTo(RBX, pickOtherUser(rng, user));
}

/**
 * Adjacent-chunk overflow: buf and victim are sequential
 * allocations, so the victim's data sits heapChunkDistance(buf)
 * past buf. Three shapes: a byte-granular overflow loop, a single
 * OOB quad store, or an OOB quad read of a planted secret.
 */
AttackCase
genOverflow(Random &rng)
{
    Gen g;
    const uint64_t buf_user = pickUser(rng);
    const uint64_t dist = chunkFor(buf_user);
    const uint64_t vic_user = pickUser(rng);
    const uint64_t vic_off = 8 * rng.uniform(0, vic_user / 8 - 1);
    const bool is_read = rng.chance(0.35);
    const bool loop_write = !is_read && rng.chance(0.5);
    const bool guard = rng.chance(0.5);
    const uint64_t reach = dist + vic_off;

    g.mallocTo(R12, buf_user);
    g.mallocTo(R13, vic_user);
    if (guard)
        g.mallocTo(R14, 512);

    // Plant the secret in the victim word so the program can verify
    // the corruption (or the leak) actually landed.
    g.as.movri(RCX, static_cast<int64_t>(Secret));
    g.as.movmr(memAt(R13, vic_off), RCX);

    if (is_read) {
        g.as.movrm(RDX, memAt(R12, reach)); // OOB read (anchor)
        g.as.movri(RCX, static_cast<int64_t>(Secret));
        g.indicateIfEqual(RDX, RCX);
        g.tag = "ovf-read-b" + std::to_string(buf_user) + "-r" +
                std::to_string(reach);
        return g.finish(Violation::OutOfBounds);
    }

    if (loop_write) {
        // Byte-granular overflow from offset 0 through the victim
        // word; the first store past buf_user is the anchor.
        const int64_t fill =
            static_cast<int64_t>(0x41 + rng.uniform(0, 0x7d));
        auto loop = g.as.newLabel();
        auto done = g.as.newLabel();
        g.as.movri(RCX, fill);
        g.as.movri(R10, 0);
        g.as.bind(loop);
        g.as.cmpri(R10, static_cast<int64_t>(reach + 8));
        g.as.jcc(CondCode::AE, done);
        g.as.movmr(memAt(R12, 0, R10, 1), RCX, 1);
        g.as.addri(R10, 1);
        g.as.jmp(loop);
        g.as.bind(done);
        g.tag = "ovf-loop-b" + std::to_string(buf_user) + "-r" +
                std::to_string(reach);
    } else {
        const uint64_t delta = 1 + (rng.next() & 0xffff);
        g.as.movri(RCX, static_cast<int64_t>(Secret ^ delta));
        g.as.movmr(memAt(R12, reach), RCX); // OOB store (anchor)
        g.tag = "ovf-store-b" + std::to_string(buf_user) + "-r" +
                std::to_string(reach);
    }

    // Corruption landed iff the victim word lost the secret.
    g.as.movrm(RDX, memAt(R13, vic_off));
    g.as.movri(RCX, static_cast<int64_t>(Secret));
    g.indicateIfDiffers(RDX, RCX);
    return g.finish(Violation::OutOfBounds);
}

/**
 * Use-after-free at a seeded free-to-reuse distance. Store
 * flavour: the stale pointer writes into the chunk's new owner.
 * Load flavour: the stale pointer reads the freed chunk's fd link,
 * leaking the previously freed neighbour's chunk address.
 */
AttackCase
genUseAfterFree(Random &rng)
{
    Gen g;
    const uint64_t user = pickUser(rng);
    const unsigned gap = static_cast<unsigned>(rng.uniform(0, 5));

    if (rng.chance(0.5)) {
        const uint64_t off = 8 * rng.uniform(0, user / 8 - 1);
        g.mallocTo(R12, user);
        g.freeReg(R12);
        emitDecoys(g, rng, user, gap);
        g.mallocTo(R13, user); // LIFO: the same chunk comes back
        g.as.movri(RCX, static_cast<int64_t>(Secret));
        g.as.movmr(memAt(R12, off), RCX); // stale write (anchor)
        g.as.movrm(RDX, memAt(R13, off)); // lands in the new owner
        g.as.movri(RCX, static_cast<int64_t>(Secret));
        g.indicateIfEqual(RDX, RCX);
        g.tag = "uaf-store-s" + std::to_string(user) + "-o" +
                std::to_string(off) + "-g" + std::to_string(gap);
        return g.finish(Violation::UseAfterFree);
    }

    g.mallocTo(R12, user); // a
    g.mallocTo(R13, user); // b
    g.freeReg(R12);
    g.freeReg(R13);
    emitDecoys(g, rng, user, gap);
    g.as.movrm(RDX, memAt(R13, 0)); // stale read (anchor): b's fd
    g.as.movrr(RCX, R12);
    g.as.subri(RCX, 16); // == a's chunk address
    g.indicateIfEqual(RDX, RCX);
    g.tag = "uaf-load-s" + std::to_string(user) + "-g" +
            std::to_string(gap);
    return g.finish(Violation::UseAfterFree);
}

/**
 * Double free with interleaved decoy allocations (and optionally a
 * decoy free) between the two frees, making the bin cyclic: the
 * two subsequent mallocs return the same chunk.
 */
AttackCase
genDoubleFree(Random &rng)
{
    Gen g;
    const uint64_t user = pickUser(rng);
    const unsigned pre = static_cast<unsigned>(rng.uniform(0, 2));
    const unsigned mid = static_cast<unsigned>(rng.uniform(0, 3));
    const unsigned post = static_cast<unsigned>(rng.uniform(0, 3));
    const bool free_decoy = post > 0 && rng.chance(0.4);

    emitDecoys(g, rng, user, pre);
    g.mallocTo(R12, user);
    emitDecoys(g, rng, user, mid);
    g.freeReg(R12);
    emitDecoys(g, rng, user, post);
    if (free_decoy)
        g.freeReg(RBX); // last decoy: lands in a different bin
    g.freeReg(R12);     // double free (anchor)
    g.mallocTo(R13, user);
    g.mallocTo(R14, user);
    g.indicateIfEqual(R13, R14);
    g.tag = "df-s" + std::to_string(user) + "-p" +
            std::to_string(pre) + "-m" + std::to_string(mid) + "-q" +
            std::to_string(post) + (free_decoy ? "-fd" : "");
    return g.finish(Violation::DoubleFree);
}

/**
 * Uninitialized read of recycled memory: the previous owner left a
 * secret behind; the new owner reads the word before ever writing
 * it. Insecure baseline leaks the secret; a conditional-capability
 * variant (detectUninitializedReads) anchors on the read.
 */
AttackCase
genUninitRead(Random &rng)
{
    Gen g;
    const uint64_t user = 32 + 16 * rng.uniform(0, 11); // >= 32
    // Offset 0 holds the free-list fd after free(); skip it so the
    // planted secret survives recycling.
    const uint64_t off = 8 * rng.uniform(1, user / 8 - 1);
    const unsigned gap = static_cast<unsigned>(rng.uniform(0, 4));

    g.mallocTo(R12, user);
    g.as.movri(RCX, static_cast<int64_t>(Secret));
    g.as.movmr(memAt(R12, off), RCX);
    g.freeReg(R12);
    emitDecoys(g, rng, user, gap);
    g.mallocTo(R13, user);            // the recycled chunk
    g.as.movrm(RDX, memAt(R13, off)); // read-before-write (anchor)
    g.as.movri(RCX, static_cast<int64_t>(Secret));
    g.indicateIfEqual(RDX, RCX);
    g.tag = "uninit-s" + std::to_string(user) + "-o" +
            std::to_string(off) + "-g" + std::to_string(gap);
    return g.finish(Violation::UninitializedRead);
}

/**
 * Fake-chunk metadata forgery: free a pointer that was never
 * returned by malloc — a global fake chunk with a forged header, an
 * interior pointer into a live chunk, or a wild address whose
 * garbage header the allocator coerces — and observe malloc hand
 * the attacker-chosen region out.
 */
AttackCase
genForge(Random &rng)
{
    Gen g;
    const unsigned shape = static_cast<unsigned>(rng.uniform(0, 2));
    const uint64_t fake_chunk = 32 + 16 * rng.uniform(0, 4);

    if (shape == 0) {
        // House-of-spirit: forged header in the data section.
        g.as.addGlobal("gen_fake", fake_chunk + 32);
        uint64_t pool_fake = g.as.poolSlotFor("gen_fake");
        g.as.movrm(R15, memRip(pool_fake));
        g.as.movmi(memAt(R15, 8),
                   InUseHeader(static_cast<int64_t>(fake_chunk)), 8);
        g.as.movrr(RDI, R15);
        g.as.addri(RDI, 16);
        g.as.call(IntrinsicKind::Free); // invalid free (anchor)
        g.mallocTo(R13, static_cast<int64_t>(fake_chunk - 16));
        g.as.addri(R15, 16);
        g.indicateIfEqual(R13, R15);
        g.tag = "forge-global-c" + std::to_string(fake_chunk);
    } else if (shape == 1) {
        // Interior free: the host chunk's user data is misread as a
        // chunk header (pre-seeded to look valid).
        const uint64_t hoff = 16 * rng.uniform(0, 3);
        const uint64_t host_user =
            hoff + fake_chunk + 16 * rng.uniform(1, 3);
        g.mallocTo(R12, static_cast<int64_t>(host_user));
        g.as.movmi(memAt(R12, static_cast<int64_t>(hoff + 8)),
                   InUseHeader(static_cast<int64_t>(fake_chunk)), 8);
        g.as.lea(RDI, memAt(R12, static_cast<int64_t>(hoff + 16)));
        g.as.movrr(R15, RDI);
        g.as.call(IntrinsicKind::Free); // invalid free (anchor)
        g.mallocTo(R13, static_cast<int64_t>(fake_chunk - 16));
        g.indicateIfEqual(R13, R15);
        g.tag = "forge-interior-c" + std::to_string(fake_chunk) +
                "-h" + std::to_string(hoff);
    } else {
        // Wild free: an arbitrary address in unmapped (zeroed)
        // memory; the zero header is coerced to MinChunk and the
        // fake chunk enters the 32-byte bin.
        const uint64_t wild =
            0x13370000ull + 0x1000 * rng.uniform(0, 255);
        g.as.movri(RDI, static_cast<int64_t>(wild));
        g.as.call(IntrinsicKind::Free); // invalid free (anchor)
        g.mallocTo(R13,
                   static_cast<int64_t>(8 + rng.uniform(0, 8)));
        g.as.movri(RCX, static_cast<int64_t>(wild));
        g.indicateIfEqual(R13, RCX);
        g.tag = "forge-wild-" + std::to_string(wild >> 12 & 0xfff);
    }
    return g.finish(Violation::InvalidFree);
}

} // anonymous namespace

const std::vector<std::string> &
generatorFamilies()
{
    static const std::vector<std::string> names = {
        "mix", "ovf", "uaf", "df", "uninit", "forge",
    };
    return names;
}

bool
generatorFamilyFromName(const std::string &name, GenFamily *out)
{
    if (name == "mix")
        *out = GenFamily::Mix;
    else if (name == "ovf")
        *out = GenFamily::Overflow;
    else if (name == "uaf")
        *out = GenFamily::UseAfterFree;
    else if (name == "df")
        *out = GenFamily::DoubleFree;
    else if (name == "uninit")
        *out = GenFamily::UninitRead;
    else if (name == "forge")
        *out = GenFamily::Forge;
    else
        return false;
    return true;
}

std::string
generatorFamilyName(GenFamily family)
{
    switch (family) {
      case GenFamily::Mix: return "mix";
      case GenFamily::Overflow: return "ovf";
      case GenFamily::UseAfterFree: return "uaf";
      case GenFamily::DoubleFree: return "df";
      case GenFamily::UninitRead: return "uninit";
      case GenFamily::Forge: return "forge";
    }
    return "mix";
}

AttackCase
generateAttack(GenFamily family, uint64_t seed)
{
    // Distinct per-family streams: gen/ovf seed 5 and gen/uaf seed 5
    // must not be correlated draws.
    Random rng(seed +
               0x9e3779b97f4a7c15ull *
                   (static_cast<uint64_t>(family) + 1));

    if (family == GenFamily::Mix) {
        static const GenFamily concrete[] = {
            GenFamily::Overflow, GenFamily::UseAfterFree,
            GenFamily::DoubleFree, GenFamily::UninitRead,
            GenFamily::Forge,
        };
        family = concrete[rng.uniform(0, 4)];
    }

    switch (family) {
      case GenFamily::Overflow: return genOverflow(rng);
      case GenFamily::UseAfterFree: return genUseAfterFree(rng);
      case GenFamily::DoubleFree: return genDoubleFree(rng);
      case GenFamily::UninitRead: return genUninitRead(rng);
      case GenFamily::Forge: return genForge(rng);
      case GenFamily::Mix: break;
    }
    throw std::logic_error("generateAttack: bad family");
}

} // namespace chex

#include "how2heap.hh"

#include "isa/assembler.hh"

namespace chex
{

namespace
{

/** Small builder shared by all How2Heap cases. */
struct HeapCase
{
    Assembler as;
    uint64_t indAddr;
    uint64_t poolInd;

    HeapCase()
    {
        indAddr = as.addGlobal("h2h_indicator", 8);
        poolInd = as.poolSlotFor("h2h_indicator");
    }

    void
    mallocTo(RegId dst, int64_t size)
    {
        as.movri(RDI, size);
        as.call(IntrinsicKind::Malloc);
        if (dst != RAX)
            as.movrr(dst, RAX);
    }

    void
    freeReg(RegId src)
    {
        if (src != RDI)
            as.movrr(RDI, src);
        as.call(IntrinsicKind::Free);
    }

    /** indicator = (x == y) ? 1 : 0 */
    void
    indicateIfEqual(RegId x, RegId y)
    {
        auto skip = as.newLabel();
        as.movri(RAX, 0);
        as.cmprr(x, y);
        as.jcc(CondCode::NE, skip);
        as.movri(RAX, 1);
        as.bind(skip);
        as.movrm(R11, memRip(poolInd));
        as.movmr(memAt(R11, 0), RAX);
    }

    void
    indicate(int64_t value)
    {
        as.movrm(R11, memRip(poolInd));
        as.movmi(memAt(R11, 0), value, 8);
    }

    AttackCase
    finish(const char *name, Violation expected)
    {
        as.hlt();
        AttackCase out;
        out.suite = "How2Heap";
        out.name = name;
        out.expected = expected;
        out.indicatorAddr = indAddr;
        out.program = as.finalize();
        return out;
    }
};

constexpr int64_t InUseHeader(int64_t chunk_size)
{
    return chunk_size | 3; // size | IN_USE | PREV_INUSE
}

} // anonymous namespace

std::vector<AttackCase>
how2heapSuite()
{
    std::vector<AttackCase> cases;

    // 1. fastbin_dup: double free makes the bin cyclic; two
    // subsequent mallocs return the same chunk.
    {
        HeapCase b;
        b.mallocTo(R12, 32);
        b.freeReg(R12);
        b.freeReg(R12); // CHEx86 anchors here
        b.mallocTo(R13, 32);
        b.mallocTo(R14, 32);
        b.indicateIfEqual(R13, R14);
        cases.push_back(b.finish("fastbin_dup", Violation::DoubleFree));
    }

    // 2. fastbin_dup_into_stack: poison the freed chunk's fd via a
    // use-after-free write; malloc then returns an attacker-chosen
    // region (a global here).
    {
        HeapCase b;
        uint64_t tgt = b.as.addGlobal("h2h_target", 64);
        (void)tgt;
        uint64_t pool_tgt = b.as.poolSlotFor("h2h_target");
        b.mallocTo(R12, 32);
        b.freeReg(R12);
        b.as.movrm(R15, memRip(pool_tgt));
        b.as.movmr(memAt(R12, 0), R15); // UAF write of fd
        b.mallocTo(R13, 32);            // = R12 again
        b.mallocTo(R14, 32);            // = target + 16
        b.as.addri(R15, 16);
        b.indicateIfEqual(R14, R15);
        cases.push_back(b.finish("fastbin_dup_into_stack",
                                 Violation::UseAfterFree));
    }

    // 3. fastbin_dup_consolidate: double free with an intervening
    // different-size allocation to evade naive head checks.
    {
        HeapCase b;
        b.mallocTo(R12, 32);
        b.freeReg(R12);
        b.mallocTo(R13, 200); // decoy
        b.freeReg(R12);       // CHEx86 anchors here
        b.mallocTo(R13, 32);
        b.mallocTo(R14, 32);
        b.indicateIfEqual(R13, R14);
        cases.push_back(b.finish("fastbin_dup_consolidate",
                                 Violation::DoubleFree));
    }

    // 4. house_of_spirit: free a fake chunk crafted in the global
    // data section; malloc then returns it.
    {
        HeapCase b;
        uint64_t fake = b.as.addGlobal("h2h_fake", 64);
        (void)fake;
        uint64_t pool_fake = b.as.poolSlotFor("h2h_fake");
        b.as.movrm(R15, memRip(pool_fake));
        b.as.movmi(memAt(R15, 8), InUseHeader(48), 8); // fake size
        b.as.movrr(RDI, R15);
        b.as.addri(RDI, 16); // fake user pointer
        b.as.call(IntrinsicKind::Free); // CHEx86: invalid free
        b.mallocTo(R13, 32);
        b.as.addri(R15, 16);
        b.indicateIfEqual(R13, R15);
        cases.push_back(b.finish("house_of_spirit",
                                 Violation::InvalidFree));
    }

    // 5. house_of_spirit_stack: the same with a stack-crafted fake
    // chunk (PID 0).
    {
        HeapCase b;
        b.as.subri(RSP, 128);
        b.as.lea(RBX, memAt(RSP, 16));
        b.as.movmi(memAt(RBX, 8), InUseHeader(48), 8);
        b.as.lea(RDI, memAt(RBX, 16));
        b.as.movrr(R15, RDI);
        b.as.call(IntrinsicKind::Free);
        b.mallocTo(R13, 32);
        b.indicateIfEqual(R13, R15);
        cases.push_back(b.finish("house_of_spirit_stack",
                                 Violation::InvalidFree));
    }

    // 6. poison_null_byte: a single-byte overflow rewrites the
    // adjacent chunk's size; freeing it files it in the wrong bin
    // and a smaller malloc returns the same memory.
    {
        HeapCase b;
        b.mallocTo(R12, 56); // chunk size 80
        b.mallocTo(R13, 56);
        b.mallocTo(R14, 56); // keeps the wilderness away
        b.as.movri(RCX, 0x23); // size 32 | flags
        b.as.movmr(memAt(R12, 72), RCX, 1); // one byte OOB
        b.freeReg(R13);
        b.mallocTo(R15, 16); // chunkSizeFor(16)=32 -> poisoned bin
        b.indicateIfEqual(R15, R13);
        cases.push_back(b.finish("poison_null_byte",
                                 Violation::OutOfBounds));
    }

    // 7. overlapping_chunks: grow the neighbour's size via OOB, free
    // it, and reallocate it bigger so it overlaps the third chunk.
    {
        HeapCase b;
        b.mallocTo(R12, 56);
        b.mallocTo(R13, 56);
        b.mallocTo(R14, 56);
        b.as.movri(RCX, InUseHeader(160));
        b.as.movmr(memAt(R12, 72), RCX); // OOB: b's header
        b.freeReg(R13);
        b.mallocTo(R15, 136); // chunkSizeFor(136)=160 -> returns b
        b.as.addri(R15, 80);  // b + 80 == c if overlapping
        b.indicateIfEqual(R15, R14);
        cases.push_back(b.finish("overlapping_chunks",
                                 Violation::OutOfBounds));
    }

    // 8. chunk_extend: corrupt the chunk's *own* header through an
    // underflowing write, then free and reallocate it overlapping
    // its neighbour.
    {
        HeapCase b;
        b.mallocTo(R12, 56);
        b.mallocTo(R13, 56);
        b.as.movri(RCX, InUseHeader(160));
        b.as.movmr(memAt(R12, -8), RCX); // own header, OOB under
        b.freeReg(R12);
        b.mallocTo(R15, 136); // = a, now 160 bytes spanning b
        b.as.addri(R15, 80);
        b.indicateIfEqual(R15, R13);
        cases.push_back(b.finish("chunk_extend",
                                 Violation::OutOfBounds));
    }

    // 9. unsafe_unlink: overflow into the freed neighbour's fd link;
    // the second malloc returns an attacker-chosen region.
    {
        HeapCase b;
        uint64_t tgt = b.as.addGlobal("h2h_target", 64);
        (void)tgt;
        uint64_t pool_tgt = b.as.poolSlotFor("h2h_target");
        b.mallocTo(R12, 56);
        b.mallocTo(R13, 56);
        b.freeReg(R13);
        b.as.movrm(R15, memRip(pool_tgt));
        b.as.movmr(memAt(R12, 80), R15); // OOB write of b's fd
        b.mallocTo(R13, 56);             // pops b, bins -> target
        b.mallocTo(R14, 56);             // = target + 16
        b.as.addri(R15, 16);
        b.indicateIfEqual(R14, R15);
        cases.push_back(b.finish("unsafe_unlink",
                                 Violation::OutOfBounds));
    }

    // 10. wilderness_smash: stomp far past the last chunk into the
    // wilderness the next allocation will come from.
    {
        HeapCase b;
        b.mallocTo(R12, 56);
        auto loop = b.as.newLabel();
        auto done = b.as.newLabel();
        b.as.movri(RCX, 0xCC);
        b.as.movri(R10, 0);
        b.as.bind(loop);
        b.as.cmpri(R10, 512);
        b.as.jcc(CondCode::AE, done);
        b.as.movmr(memAt(R12, 56, R10, 1), RCX, 1); // OOB from 56
        b.as.addri(R10, 1);
        b.as.jmp(loop);
        b.as.bind(done);
        b.mallocTo(R13, 56);
        b.as.movrm(RDX, memAt(R13, 8), 1); // pre-stomped wilderness
        b.as.movri(RCX, 0xCC);
        b.indicateIfEqual(RDX, RCX);
        cases.push_back(b.finish("wilderness_smash",
                                 Violation::OutOfBounds));
    }

    // 11. uaf_write_corrupt: stale pointer writes into the block's
    // new owner after reuse.
    {
        HeapCase b;
        b.mallocTo(R12, 56);
        b.freeReg(R12);
        b.mallocTo(R13, 56); // same chunk reused
        b.as.movmi(memAt(R12, 8), 0x99, 8); // UAF write
        b.as.movrm(RDX, memAt(R13, 8));
        b.as.movri(RCX, 0x99);
        b.indicateIfEqual(RDX, RCX);
        cases.push_back(b.finish("uaf_write_corrupt",
                                 Violation::UseAfterFree));
    }

    // 12. uaf_read_leak: read the freed chunk's fd to leak another
    // chunk's address.
    {
        HeapCase b;
        b.mallocTo(R12, 32);
        b.mallocTo(R13, 32);
        b.freeReg(R12);
        b.freeReg(R13);
        b.as.movrm(RDX, memAt(R13, 0)); // UAF read: fd == a's chunk
        b.as.movrr(RCX, R12);
        b.as.subri(RCX, 16);
        b.indicateIfEqual(RDX, RCX);
        cases.push_back(b.finish("uaf_read_leak",
                                 Violation::UseAfterFree));
    }

    // 13. tcache_dup: small-size double free.
    {
        HeapCase b;
        b.mallocTo(R12, 16);
        b.freeReg(R12);
        b.freeReg(R12);
        b.mallocTo(R13, 16);
        b.mallocTo(R14, 16);
        b.indicateIfEqual(R13, R14);
        cases.push_back(b.finish("tcache_dup", Violation::DoubleFree));
    }

    // 14. tcache_poisoning: small-size fd poison via UAF.
    {
        HeapCase b;
        uint64_t tgt = b.as.addGlobal("h2h_target", 64);
        (void)tgt;
        uint64_t pool_tgt = b.as.poolSlotFor("h2h_target");
        b.mallocTo(R12, 16);
        b.freeReg(R12);
        b.as.movrm(R15, memRip(pool_tgt));
        b.as.movmr(memAt(R12, 0), R15); // UAF fd poison
        b.mallocTo(R13, 16);
        b.mallocTo(R14, 16); // target + 16
        b.as.addri(R15, 16);
        b.indicateIfEqual(R14, R15);
        cases.push_back(b.finish("tcache_poisoning",
                                 Violation::UseAfterFree));
    }

    // 15. wild_free: free an arbitrary integer address; the fake
    // chunk enters the free list and malloc hands it out.
    {
        HeapCase b;
        b.as.movri(RDI, 0x13370000);
        b.as.call(IntrinsicKind::Free);
        b.mallocTo(R13, 8); // chunkSizeFor(8)=32 == MinChunk bin
        b.as.movri(RCX, 0x13370000);
        b.indicateIfEqual(R13, RCX);
        cases.push_back(b.finish("wild_free", Violation::InvalidFree));
    }

    // 16. interior_free: free an interior pointer; the user data is
    // misread as a chunk header (pre-seeded to look valid).
    {
        HeapCase b;
        b.mallocTo(R12, 64);
        b.as.movmi(memAt(R12, 8), InUseHeader(48), 8); // fake header
        b.as.movrr(RDI, R12);
        b.as.addri(RDI, 16);
        b.as.call(IntrinsicKind::Free);
        b.mallocTo(R13, 32); // returns the interior fake chunk
        b.as.movrr(RCX, R12);
        b.as.addri(RCX, 16);
        b.indicateIfEqual(R13, RCX);
        cases.push_back(b.finish("interior_free",
                                 Violation::InvalidFree));
    }

    // 17. heap_spray_oversize: prohibitively large allocations.
    {
        HeapCase b;
        b.as.movri(RDI, (1ll << 30) + (1ll << 28)); // 1.25 GiB
        b.as.call(IntrinsicKind::Malloc);
        b.as.movri(RCX, 0);
        auto skip = b.as.newLabel();
        b.as.movri(RBX, 0);
        b.as.cmprr(RAX, RBX);
        b.as.jcc(CondCode::EQ, skip);
        b.as.movri(RCX, 1);
        b.as.bind(skip);
        b.as.movrm(R11, memRip(b.poolInd));
        b.as.movmr(memAt(R11, 0), RCX);
        cases.push_back(b.finish("heap_spray_oversize",
                                 Violation::OversizeAlloc));
    }

    // 18. zero_alloc_overflow: malloc(0) then write through it,
    // stomping the next chunk's header.
    {
        HeapCase b;
        b.mallocTo(R12, 0);
        b.mallocTo(R13, 32);
        b.as.movmi(memAt(R12, 0), 0x47, 8);  // OOB: bounds are 0
        b.as.movmi(memAt(R12, 16), 0x48, 8); // next header region
        b.indicate(1);
        cases.push_back(b.finish("zero_alloc_overflow",
                                 Violation::OutOfBounds));
    }

    return cases;
}

} // namespace chex

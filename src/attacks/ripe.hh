/**
 * @file
 * A RIPE-style exploit generator (Runtime Intrusion Prevention
 * Evaluator, Wilander et al., ACSAC 2011). The original suite
 * generates 850 exploits by sweeping five dimensions; this
 * generator sweeps the analogous dimensions within CHEx86's
 * object-level heap/global threat model:
 *
 *   - buffer location: heap, global data section
 *   - access: write overflow, read overrun
 *   - technique: direct (past-the-end access from the overflowed
 *     buffer) or indirect (first corrupt an adjacent pointer, then
 *     access through it)
 *   - target: adjacent function pointer, adjacent data pointer,
 *     heap chunk metadata, adjacent victim variable
 *   - abused function: inline store loop, strcpy, memcpy
 *   - payload size: 1 byte past bounds up to 4x the buffer
 *
 * Every generated exploit anchors on an out-of-bounds access, which
 * is where CHEx86 flags it (Section VII-A).
 */

#ifndef CHEX_ATTACKS_RIPE_HH
#define CHEX_ATTACKS_RIPE_HH

#include <vector>

#include "attacks/attack.hh"

namespace chex
{

/** RIPE sweep dimensions. */
enum class RipeLocation : uint8_t { Heap, Data };
enum class RipeAccess : uint8_t { Write, Read };
enum class RipeTechnique : uint8_t { Direct, Indirect };
enum class RipeTarget : uint8_t
{
    FuncPtr,
    DataPtr,
    HeapMetadata,
    VictimVar,
};
enum class RipeAbuse : uint8_t { LoopStore, Strcpy, Memcpy };

/** Parameters of one RIPE point. */
struct RipeParams
{
    RipeLocation location = RipeLocation::Heap;
    RipeAccess access = RipeAccess::Write;
    RipeTechnique technique = RipeTechnique::Direct;
    RipeTarget target = RipeTarget::VictimVar;
    RipeAbuse abuse = RipeAbuse::LoopStore;
    uint64_t bufferSize = 64;
    uint64_t overflowBytes = 16; // bytes past the end
};

/** Build one exploit program for @p params. */
AttackCase buildRipeCase(const RipeParams &params);

/** The full sweep (valid combinations only). */
std::vector<AttackCase> ripeSweep();

} // namespace chex

#endif // CHEX_ATTACKS_RIPE_HH

/**
 * @file
 * Common attack-case representation for the three exploit suites of
 * Section VI (Security Evaluation): the RIPE-style dimension sweep,
 * the AddressSanitizer-style unit violations, and the
 * How2Heap-style heap-metadata exploits. Each case is a complete
 * simulated program plus the violation class CHEx86 is expected to
 * anchor on; many cases also write a success indicator to a global
 * so the harness can confirm that the exploit actually *works*
 * against the insecure baseline.
 */

#ifndef CHEX_ATTACKS_ATTACK_HH
#define CHEX_ATTACKS_ATTACK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cap/capability.hh"
#include "isa/program.hh"

namespace chex
{

/** One exploit program with expectations. */
struct AttackCase
{
    std::string suite;   // "RIPE" / "ASanSuite" / "How2Heap"
    std::string name;
    Program program;

    /** Violation class CHEx86 should flag (the anchor point). */
    Violation expected = Violation::None;

    /**
     * Address of a 64-bit indicator the program sets to a nonzero
     * value when the exploit's corruption primitive succeeded
     * (checked after a baseline run); 0 = not applicable.
     */
    uint64_t indicatorAddr = 0;
    uint64_t indicatorExpect = 1;
};

} // namespace chex

#endif // CHEX_ATTACKS_ATTACK_HH

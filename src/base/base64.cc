#include "base64.hh"

namespace chex
{

namespace
{

const char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    "0123456789+/";

/** 0-63 for alphabet characters, -1 otherwise ('=' included). */
int
decodeChar(char c)
{
    if (c >= 'A' && c <= 'Z')
        return c - 'A';
    if (c >= 'a' && c <= 'z')
        return c - 'a' + 26;
    if (c >= '0' && c <= '9')
        return c - '0' + 52;
    if (c == '+')
        return 62;
    if (c == '/')
        return 63;
    return -1;
}

} // namespace

std::string
base64Encode(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    std::string out;
    out.reserve(((n + 2) / 3) * 4);
    size_t i = 0;
    for (; i + 3 <= n; i += 3) {
        uint32_t v = (uint32_t(p[i]) << 16) | (uint32_t(p[i + 1]) << 8) |
                     uint32_t(p[i + 2]);
        out += kAlphabet[(v >> 18) & 63];
        out += kAlphabet[(v >> 12) & 63];
        out += kAlphabet[(v >> 6) & 63];
        out += kAlphabet[v & 63];
    }
    size_t rem = n - i;
    if (rem == 1) {
        uint32_t v = uint32_t(p[i]) << 16;
        out += kAlphabet[(v >> 18) & 63];
        out += kAlphabet[(v >> 12) & 63];
        out += "==";
    } else if (rem == 2) {
        uint32_t v = (uint32_t(p[i]) << 16) | (uint32_t(p[i + 1]) << 8);
        out += kAlphabet[(v >> 18) & 63];
        out += kAlphabet[(v >> 12) & 63];
        out += kAlphabet[(v >> 6) & 63];
        out += '=';
    }
    return out;
}

bool
base64Decode(const std::string &text, std::vector<uint8_t> &out)
{
    out.clear();
    if (text.size() % 4 != 0)
        return false;
    out.reserve((text.size() / 4) * 3);
    for (size_t i = 0; i < text.size(); i += 4) {
        int pad = 0;
        int vals[4];
        for (int j = 0; j < 4; ++j) {
            char c = text[i + j];
            if (c == '=') {
                // Padding is only legal in the last group's final
                // one or two positions.
                if (i + 4 != text.size() || j < 2)
                    return false;
                ++pad;
                vals[j] = 0;
                continue;
            }
            if (pad)
                return false; // data after '='
            vals[j] = decodeChar(c);
            if (vals[j] < 0)
                return false;
        }
        uint32_t v = (uint32_t(vals[0]) << 18) | (uint32_t(vals[1]) << 12) |
                     (uint32_t(vals[2]) << 6) | uint32_t(vals[3]);
        out.push_back(uint8_t((v >> 16) & 0xff));
        if (pad < 2)
            out.push_back(uint8_t((v >> 8) & 0xff));
        if (pad < 1)
            out.push_back(uint8_t(v & 0xff));
    }
    return true;
}

} // namespace chex

/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * All stochastic behaviour in the simulator (workload generation,
 * access-pattern noise, allocation size draws) flows through this
 * generator so that every run is exactly reproducible from a seed.
 * The core is xoshiro256**, which is fast, has a 256-bit state, and
 * passes BigCrush.
 */

#ifndef CHEX_BASE_RANDOM_HH
#define CHEX_BASE_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chex
{

/** Deterministic xoshiro256** PRNG with convenience draws. */
class Random
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator. */
    void seed(uint64_t seed);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    uint64_t uniform(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric-ish size draw used for allocation sizes: uniform
     * within [lo, hi] but biased toward small values, matching the
     * heavy small-allocation skew of real heap profiles.
     */
    uint64_t skewedSize(uint64_t lo, uint64_t hi);

    /** Pick an index in [0, weights.size()) proportionally. */
    size_t weightedIndex(const std::vector<double> &weights);

  private:
    uint64_t s[4];
};

} // namespace chex

#endif // CHEX_BASE_RANDOM_HH

#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "logging.hh"

namespace chex
{
namespace stats
{

Histogram::Histogram(double min, double max, size_t num_buckets)
    : _min(min), _max(max), _buckets(num_buckets, 0)
{
    chex_assert(max > min && num_buckets > 0, "bad histogram range");
}

void
Histogram::sample(double v, uint64_t count)
{
    if (_count == 0) {
        _minSample = v;
        _maxSample = v;
    } else {
        _minSample = std::min(_minSample, v);
        _maxSample = std::max(_maxSample, v);
    }
    _count += count;
    _sum += v * static_cast<double>(count);

    if (v < _min) {
        _underflow += count;
    } else if (v > _max) {
        _overflow += count;
    } else {
        double width = (_max - _min) / static_cast<double>(_buckets.size());
        auto idx = static_cast<size_t>((v - _min) / width);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        _buckets[idx] += count;
    }
}

double
Histogram::bucketLow(size_t i) const
{
    double width = (_max - _min) / static_cast<double>(_buckets.size());
    return _min + width * static_cast<double>(i);
}

double
Histogram::bucketHigh(size_t i) const
{
    return bucketLow(i + 1);
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _count = 0;
    _sum = 0.0;
    _minSample = 0.0;
    _maxSample = 0.0;
}

StatGroup::StatGroup(std::string name) : _name(std::move(name))
{
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    chex_assert(!scalars.count(name) && !formulas.count(name),
                "duplicate stat name");
    auto &entry = scalars[name];
    entry.stat = std::make_unique<Scalar>();
    entry.desc = desc;
    return *entry.stat;
}

void
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      Formula f)
{
    chex_assert(!scalars.count(name) && !formulas.count(name),
                "duplicate stat name");
    auto &entry = formulas[name];
    entry.formula = std::move(f);
    entry.desc = desc;
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double min, double max, size_t num_buckets)
{
    chex_assert(!histograms.count(name), "duplicate histogram name");
    auto &entry = histograms[name];
    entry.stat = std::make_unique<Histogram>(min, max, num_buckets);
    entry.desc = desc;
    return *entry.stat;
}

void
StatGroup::addChild(StatGroup *child)
{
    chex_assert(child != nullptr, "null stat child");
    children.push_back(child);
}

const Scalar *
StatGroup::findScalar(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? nullptr : it->second.stat.get();
}

const StatGroup::FormulaEntry *
StatGroup::findFormula(const std::string &name) const
{
    auto it = formulas.find(name);
    return it == formulas.end() ? nullptr : &it->second;
}

double
StatGroup::get(const std::string &dotted_path) const
{
    auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        if (const Scalar *s = findScalar(dotted_path))
            return s->value();
        if (const FormulaEntry *f = findFormula(dotted_path))
            return f->formula();
        chex_panic("stat '%s' not found in group '%s'",
                   dotted_path.c_str(), _name.c_str());
    }
    std::string head = dotted_path.substr(0, dot);
    std::string rest = dotted_path.substr(dot + 1);
    for (const StatGroup *child : children) {
        if (child->name() == head)
            return child->get(rest);
    }
    chex_panic("stat group '%s' not found in group '%s'", head.c_str(),
               _name.c_str());
}

bool
StatGroup::has(const std::string &dotted_path) const
{
    auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        return findScalar(dotted_path) != nullptr ||
               findFormula(dotted_path) != nullptr;
    }
    std::string head = dotted_path.substr(0, dot);
    std::string rest = dotted_path.substr(dot + 1);
    for (const StatGroup *child : children) {
        if (child->name() == head)
            return child->has(rest);
    }
    return false;
}

void
StatGroup::resetAll()
{
    for (auto &[name, entry] : scalars)
        entry.stat->reset();
    for (auto &[name, entry] : histograms)
        entry.stat->reset();
    for (StatGroup *child : children)
        child->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[name, entry] : scalars) {
        os << base << "." << name << " = " << entry.stat->count()
           << "   # " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : formulas) {
        os << base << "." << name << " = " << entry.formula()
           << "   # " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : histograms) {
        const Histogram &h = *entry.stat;
        os << base << "." << name << "::count = " << h.count()
           << "   # " << entry.desc << "\n";
        os << base << "." << name << "::mean = " << h.mean() << "\n";
        os << base << "." << name << "::min = " << h.minSample() << "\n";
        os << base << "." << name << "::max = " << h.maxSample() << "\n";
    }
    for (const StatGroup *child : children)
        child->dump(os, base);
}

json::Value
StatGroup::toJson() const
{
    json::Value obj = json::Value::object();
    // Exact integer counts: json::Value keeps uint64 values exact,
    // so counters survive the 2^53 double-precision cliff in dumps.
    for (const auto &[name, entry] : scalars)
        obj.set(name, entry.stat->count());
    for (const auto &[name, entry] : formulas)
        obj.set(name, entry.formula());
    for (const auto &[name, entry] : histograms) {
        const Histogram &h = *entry.stat;
        obj.set(name, json::Value::object()
                          .set("count", h.count())
                          .set("sum", h.sum())
                          .set("mean", h.mean())
                          .set("min", h.minSample())
                          .set("max", h.maxSample()));
    }
    for (const StatGroup *child : children)
        obj.set(child->name(), child->toJson());
    return obj;
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    json::Value root = json::Value::object();
    root.set(_name, toJson());
    root.write(os, 2);
}

} // namespace stats
} // namespace chex

/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            this code base); aborts.
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * warn()   — something works but imperfectly; execution continues.
 * inform() — status message with no negative connotation.
 */

#ifndef CHEX_BASE_LOGGING_HH
#define CHEX_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace chex
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Get the process-wide log level (default: Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of csprintf. */
std::string vcsprintf(const char *fmt, va_list args);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void debugImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace chex

#define chex_panic(...) \
    ::chex::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define chex_fatal(...) \
    ::chex::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define chex_warn(...) ::chex::warnImpl(__VA_ARGS__)

#define chex_inform(...) ::chex::informImpl(__VA_ARGS__)

#define chex_debug(...) ::chex::debugImpl(__VA_ARGS__)

/** Assertion that survives NDEBUG builds; panics on failure. */
#define chex_assert(cond, ...)                                         \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::chex::panicImpl(__FILE__, __LINE__,                      \
                              "assertion failed: %s", #cond);          \
        }                                                              \
    } while (0)

#endif // CHEX_BASE_LOGGING_HH

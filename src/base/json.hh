/**
 * @file
 * A minimal dependency-free JSON value type with a writer and a
 * strict recursive-descent parser.
 *
 * The campaign driver uses it to emit machine-readable reports and
 * the tests use the parser to round-trip them; System::dumpStatsJson
 * uses it for structured single-run stats. Deliberately small: no
 * comments, no NaN/Inf (written as null), objects preserve insertion
 * order, numbers are doubles (integral values in the exactly
 * representable range are printed without a decimal point so
 * uint64 counters round-trip textually).
 */

#ifndef CHEX_BASE_JSON_HH
#define CHEX_BASE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace chex
{
namespace json
{

/** One JSON value (null, bool, number, string, array, or object). */
class Value
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : _kind(Kind::Bool), _bool(b) {}
    Value(double d) : _kind(Kind::Number), _num(d) {}
    // Non-negative signed integers keep the exact-uint flag too, so
    // asUint64() never round-trips an int-constructed counter
    // through its double approximation.
    Value(int i) : _kind(Kind::Number), _num(i)
    {
        if (i >= 0) {
            _uint = static_cast<uint64_t>(i);
            _exactUint = true;
        }
    }
    Value(unsigned u) : Value(static_cast<uint64_t>(u)) {}
    Value(int64_t i)
        : _kind(Kind::Number), _num(static_cast<double>(i))
    {
        if (i >= 0) {
            _uint = static_cast<uint64_t>(i);
            _exactUint = true;
        }
    }
    // Unsigned 64-bit values (counters, seeds) stay exact: the
    // writer prints the integer, not its double approximation.
    Value(uint64_t u)
        : _kind(Kind::Number), _num(static_cast<double>(u)),
          _uint(u), _exactUint(true) {}
    Value(const char *s) : _kind(Kind::String), _str(s) {}
    Value(std::string s) : _kind(Kind::String), _str(std::move(s)) {}

    /** Empty-aggregate factories (distinguish {} from []). */
    static Value object();
    static Value array();

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    /** @{ @name Typed accessors (panic on kind mismatch) */
    bool boolean() const;
    double number() const;
    /**
     * The number as an exact uint64 when it was written/parsed as a
     * non-negative integer literal; otherwise the double, cast.
     */
    uint64_t asUint64() const;
    const std::string &str() const;
    /** @} */

    /** Append to an array (converts a Null value to an array). */
    Value &push(Value v);

    /**
     * Set an object member (converts a Null value to an object);
     * returns *this so construction chains.
     */
    Value &set(const std::string &key, Value v);

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Object member by key; panics when absent. */
    const Value &at(const std::string &key) const;

    /** Array element by index; panics when out of range. */
    const Value &at(size_t index) const;

    /** Element/member count (0 for scalars). */
    size_t size() const;

    const std::vector<Value> &items() const { return _items; }
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return _members;
    }

    /**
     * Serialize. @p indent 0 writes compact single-line JSON;
     * positive values pretty-print with that many spaces per level.
     */
    void write(std::ostream &os, unsigned indent = 0) const;

    /** write() into a string. */
    std::string dump(unsigned indent = 0) const;

    /**
     * Strict RFC-8259-style parse of @p text (whole-input; trailing
     * garbage is an error). Returns false and fills @p err (if
     * non-null) on malformed input.
     */
    static bool parse(const std::string &text, Value &out,
                      std::string *err = nullptr);

  private:
    void writeIndented(std::ostream &os, unsigned indent,
                       unsigned depth) const;

    Kind _kind = Kind::Null;
    bool _bool = false;
    double _num = 0.0;
    uint64_t _uint = 0;       // exact value when _exactUint
    bool _exactUint = false;
    std::string _str;
    std::vector<Value> _items;                          // Array
    std::vector<std::pair<std::string, Value>> _members; // Object
};

/** Write @p s as a quoted, escaped JSON string literal. */
void writeEscaped(std::ostream &os, const std::string &s);

/**
 * @{ @name Parse→struct helpers
 *
 * Member lookups with a default, for mapping parsed documents onto
 * structs (the `fromJson` direction of the report serializers): the
 * default is returned when @p obj is not an object, the member is
 * absent, or the member has the wrong kind, so optional/older-schema
 * fields read cleanly.
 */
bool getBool(const Value &obj, const std::string &key, bool dflt);
uint64_t getUint(const Value &obj, const std::string &key,
                 uint64_t dflt);
/** Signed variant for members that can be negative (exit codes). */
int64_t getInt(const Value &obj, const std::string &key,
               int64_t dflt);
double getDouble(const Value &obj, const std::string &key, double dflt);
std::string getString(const Value &obj, const std::string &key,
                      const std::string &dflt);
/** @} */

} // namespace json
} // namespace chex

#endif // CHEX_BASE_JSON_HH

/**
 * @file
 * A flat sorted set of disjoint half-open ranges [start, end) over
 * uint64_t, kept canonical (sorted, non-overlapping, non-adjacent —
 * touching ranges are coalesced on insert). Backed by one contiguous
 * vector instead of a node-per-range std::map, so membership and
 * overlap queries are a cache-friendly binary search and insertion
 * is a memmove — the right trade for the simulator's shadow
 * structures, which are query-dominated and mutate in bursts.
 *
 * Two hot consumers: the heap allocator's ASan poison ranges (every
 * poisoning free/alloc does an add/subtract, every checked access an
 * overlap probe) and the capability table's initialization shadow
 * (covered-interval queries replacing per-allocation word bitmaps).
 */

#ifndef CHEX_BASE_RANGE_SET_HH
#define CHEX_BASE_RANGE_SET_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace chex
{

/** Canonical flat set of disjoint [start, end) uint64 ranges. */
class RangeSet
{
  public:
    using Range = std::pair<uint64_t, uint64_t>; // [first, second)

    /**
     * Add [start, end), merging with any overlapping or adjacent
     * ranges. Empty ranges (start >= end) are ignored.
     */
    void add(uint64_t start, uint64_t end);

    /**
     * Remove [start, end) from the set, splitting any range that
     * straddles a boundary. Empty ranges are ignored.
     */
    void subtract(uint64_t start, uint64_t end);

    /** True if any point of [start, end) is in the set. */
    bool overlaps(uint64_t start, uint64_t end) const;

    /** True if every point of [start, end) is in the set. */
    bool covers(uint64_t start, uint64_t end) const;

    /** True if @p point is in the set. */
    bool contains(uint64_t point) const
    {
        return overlaps(point, point + 1);
    }

    void clear() { ranges.clear(); }
    bool empty() const { return ranges.empty(); }
    /** Number of disjoint ranges held. */
    size_t size() const { return ranges.size(); }
    /** Sum of range lengths. */
    uint64_t totalLength() const;
    /** Bytes of backing storage attributable to held ranges. */
    uint64_t storageBytes() const
    {
        return ranges.size() * sizeof(Range);
    }

    /** Ascending iteration over the disjoint ranges. */
    const std::vector<Range> &items() const { return ranges; }

  private:
    /** Index of the first range with start > @p point. */
    size_t upperBound(uint64_t point) const;

    std::vector<Range> ranges;
};

} // namespace chex

#endif // CHEX_BASE_RANGE_SET_HH

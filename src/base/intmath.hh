/**
 * @file
 * Small integer-math helpers shared across the simulator.
 */

#ifndef CHEX_BASE_INTMATH_HH
#define CHEX_BASE_INTMATH_HH

#include <cstdint>

namespace chex
{

/** True iff @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be nonzero. */
constexpr unsigned
floorLog2(uint64_t n)
{
    unsigned lg = 0;
    while (n >>= 1)
        ++lg;
    return lg;
}

/** Ceiling of log2(n); n must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** Ceiling division for nonnegative integers. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p n up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t n, uint64_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Round @p n down to a multiple of @p align (a power of two). */
constexpr uint64_t
roundDown(uint64_t n, uint64_t align)
{
    return n & ~(align - 1);
}

/** Extract bits [first, last] (inclusive, last >= first) of @p val. */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    unsigned nbits = last - first + 1;
    uint64_t mask = (nbits >= 64) ? ~0ull : ((1ull << nbits) - 1);
    return (val >> first) & mask;
}

} // namespace chex

#endif // CHEX_BASE_INTMATH_HH

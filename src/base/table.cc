#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace chex
{

Table::Table(std::vector<std::string> headers_in)
    : headers(std::move(headers_in))
{
    chex_assert(!headers.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    chex_assert(cells.size() == headers.size(),
                "row arity mismatches header");
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&](char fill) {
        os << '+';
        for (size_t w : widths) {
            for (size_t i = 0; i < w + 2; ++i)
                os << fill;
            os << '+';
        }
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c];
            for (size_t i = cells[c].size(); i < widths[c] + 1; ++i)
                os << ' ';
            os << '|';
        }
        os << '\n';
    };

    rule('-');
    line(headers);
    rule('=');
    for (const auto &row : rows)
        line(row);
    rule('-');
}

} // namespace chex

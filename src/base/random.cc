#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace chex
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Random::Random(uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(uint64_t seed_value)
{
    uint64_t x = seed_value;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Random::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Random::uniform(uint64_t lo, uint64_t hi)
{
    chex_assert(lo <= hi, "uniform: lo > hi");
    uint64_t span = hi - lo;
    if (span == UINT64_MAX)
        return next();
    return lo + next() % (span + 1);
}

double
Random::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

uint64_t
Random::skewedSize(uint64_t lo, uint64_t hi)
{
    chex_assert(lo <= hi && lo > 0, "skewedSize: bad range");
    // Draw the exponent uniformly so each power-of-two size class is
    // equally likely; real heaps skew heavily toward small blocks.
    double lg_lo = std::log2(static_cast<double>(lo));
    double lg_hi = std::log2(static_cast<double>(hi));
    double lg = lg_lo + uniformReal() * (lg_hi - lg_lo);
    uint64_t size = static_cast<uint64_t>(std::llround(std::exp2(lg)));
    if (size < lo)
        size = lo;
    if (size > hi)
        size = hi;
    return size;
}

size_t
Random::weightedIndex(const std::vector<double> &weights)
{
    chex_assert(!weights.empty(), "weightedIndex: empty weights");
    double total = 0.0;
    for (double w : weights)
        total += w;
    chex_assert(total > 0.0, "weightedIndex: nonpositive total");
    double draw = uniformReal() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (draw < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace chex

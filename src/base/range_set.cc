#include "range_set.hh"

#include <algorithm>

namespace chex
{

size_t
RangeSet::upperBound(uint64_t point) const
{
    return std::upper_bound(ranges.begin(), ranges.end(), point,
                            [](uint64_t p, const Range &r) {
                                return p < r.first;
                            }) -
           ranges.begin();
}

void
RangeSet::add(uint64_t start, uint64_t end)
{
    if (start >= end)
        return;
    size_t lo = upperBound(start);
    // Merge a predecessor that reaches (or touches) start.
    if (lo > 0 && ranges[lo - 1].second >= start) {
        --lo;
        start = ranges[lo].first;
        end = std::max(end, ranges[lo].second);
    }
    // Swallow every following range that overlaps or touches end.
    size_t hi = lo;
    while (hi < ranges.size() && ranges[hi].first <= end) {
        end = std::max(end, ranges[hi].second);
        ++hi;
    }
    if (lo == hi) {
        ranges.insert(ranges.begin() + lo, Range(start, end));
    } else {
        ranges[lo] = Range(start, end);
        ranges.erase(ranges.begin() + lo + 1, ranges.begin() + hi);
    }
}

void
RangeSet::subtract(uint64_t start, uint64_t end)
{
    if (start >= end || ranges.empty())
        return;
    size_t lo = upperBound(start);
    // A predecessor strictly containing start may survive on the
    // left (and, if it extends past end, on the right too).
    if (lo > 0 && ranges[lo - 1].second > start) {
        --lo;
        Range prev = ranges[lo];
        if (prev.first < start && prev.second > end) {
            // Split into two.
            ranges[lo] = Range(prev.first, start);
            ranges.insert(ranges.begin() + lo + 1,
                          Range(end, prev.second));
            return;
        }
        if (prev.first < start) {
            ranges[lo] = Range(prev.first, start);
            ++lo;
        }
    }
    // Drop fully covered ranges; trim one straddling end.
    size_t hi = lo;
    while (hi < ranges.size() && ranges[hi].first < end) {
        if (ranges[hi].second > end) {
            ranges[hi] = Range(end, ranges[hi].second);
            break;
        }
        ++hi;
    }
    ranges.erase(ranges.begin() + lo, ranges.begin() + hi);
}

bool
RangeSet::overlaps(uint64_t start, uint64_t end) const
{
    if (start >= end)
        return false;
    size_t i = upperBound(start);
    if (i > 0 && ranges[i - 1].second > start)
        return true;
    return i < ranges.size() && ranges[i].first < end;
}

bool
RangeSet::covers(uint64_t start, uint64_t end) const
{
    if (start >= end)
        return true;
    // Canonical form: a fully covered interval lies inside a single
    // range (touching ranges were coalesced).
    size_t i = upperBound(start);
    return i > 0 && ranges[i - 1].second >= end;
}

uint64_t
RangeSet::totalLength() const
{
    uint64_t sum = 0;
    for (const Range &r : ranges)
        sum += r.second - r.first;
    return sum;
}

} // namespace chex

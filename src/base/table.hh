/**
 * @file
 * ASCII table rendering used by the benchmark harnesses to print
 * paper-style rows (figures rendered as tables of series).
 */

#ifndef CHEX_BASE_TABLE_HH
#define CHEX_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace chex
{

/** A simple column-aligned ASCII table. */
class Table
{
  public:
    /** @param headers Column titles, fixed for the table's life. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with box-drawing separators. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace chex

#endif // CHEX_BASE_TABLE_HH

/**
 * @file
 * Tagged FNV-1a 64 over a canonical byte stream, shared by every
 * content hash in the tree: the campaign spec hash (driver), the
 * standalone SystemConfig hash and the Program hash that pin a
 * snapshot to its machine (sim/isa), and the snapshot bundle's
 * per-entry state digest.
 *
 * Every field goes in as its tag (including the terminating NUL, so
 * "ab"+"c" cannot collide with "a"+"bc") followed by the value as 8
 * little-endian bytes; doubles contribute their IEEE-754 bit
 * pattern. The encoding is therefore independent of host endianness
 * and struct layout. This class started life as the driver's
 * SpecHasher; the byte stream is unchanged, so spec hashes recorded
 * by old campaign reports stay valid cache keys.
 */

#ifndef CHEX_BASE_FNV_HH
#define CHEX_BASE_FNV_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace chex
{

class TaggedHasher
{
  public:
    void
    bytes(const void *data, size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            _hash ^= p[i];
            _hash *= 0x100000001b3ull; // FNV-1a 64 prime
        }
    }

    void
    tag(const char *name)
    {
        bytes(name, std::strlen(name) + 1);
    }

    void
    u64(const char *name, uint64_t v)
    {
        tag(name);
        unsigned char le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(le, sizeof(le));
    }

    void
    f64(const char *name, double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(name, bits);
    }

    void
    str(const char *name, const std::string &s)
    {
        tag(name);
        u64("len", s.size());
        bytes(s.data(), s.size());
    }

    /** Never 0 — every consumer reserves 0 as an "unset" sentinel. */
    uint64_t
    digest() const
    {
        return _hash ? _hash : 1;
    }

  private:
    uint64_t _hash = 0xcbf29ce484222325ull; // FNV-1a 64 offset basis
};

} // namespace chex

#endif // CHEX_BASE_FNV_HH

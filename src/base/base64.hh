/**
 * @file
 * Standard (RFC 4648) base64 with padding, used by the snapshot
 * subsystem to embed bulk binary state — sparse-memory pages, the
 * bimodal predictor table, resource-calendar occupancy — in the
 * JSON checkpoint without a 4-8x textual blow-up.
 */

#ifndef CHEX_BASE_BASE64_HH
#define CHEX_BASE_BASE64_HH

#include <cstdint>
#include <string>
#include <vector>

namespace chex
{

/** Encode @p n bytes at @p data as padded base64. */
std::string base64Encode(const void *data, size_t n);

inline std::string
base64Encode(const std::vector<uint8_t> &data)
{
    return base64Encode(data.data(), data.size());
}

/**
 * Decode padded base64 into @p out (replacing its contents).
 * Returns false — leaving @p out unspecified — on any malformed
 * input: bad characters, bad length, or misplaced padding.
 */
bool base64Decode(const std::string &text, std::vector<uint8_t> &out);

} // namespace chex

#endif // CHEX_BASE_BASE64_HH

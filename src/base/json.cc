#include "json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "base/logging.hh"

namespace chex
{
namespace json
{

Value
Value::object()
{
    Value v;
    v._kind = Kind::Object;
    return v;
}

Value
Value::array()
{
    Value v;
    v._kind = Kind::Array;
    return v;
}

bool
Value::boolean() const
{
    chex_assert(_kind == Kind::Bool, "json: not a bool");
    return _bool;
}

double
Value::number() const
{
    chex_assert(_kind == Kind::Number, "json: not a number");
    return _num;
}

uint64_t
Value::asUint64() const
{
    chex_assert(_kind == Kind::Number, "json: not a number");
    return _exactUint ? _uint : static_cast<uint64_t>(_num);
}

const std::string &
Value::str() const
{
    chex_assert(_kind == Kind::String, "json: not a string");
    return _str;
}

Value &
Value::push(Value v)
{
    if (_kind == Kind::Null)
        _kind = Kind::Array;
    chex_assert(_kind == Kind::Array, "json: push on non-array");
    _items.push_back(std::move(v));
    return *this;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (_kind == Kind::Null)
        _kind = Kind::Object;
    chex_assert(_kind == Kind::Object, "json: set on non-object");
    for (auto &m : _members) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    _members.emplace_back(key, std::move(v));
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &m : _members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        chex_panic("json: missing object member '%s'", key.c_str());
    return *v;
}

const Value &
Value::at(size_t index) const
{
    chex_assert(_kind == Kind::Array, "json: at() on non-array");
    chex_assert(index < _items.size(), "json: array index out of range");
    return _items[index];
}

size_t
Value::size() const
{
    if (_kind == Kind::Array)
        return _items.size();
    if (_kind == Kind::Object)
        return _members.size();
    return 0;
}

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

namespace
{

// Largest integer magnitude a double represents exactly.
constexpr double kExactIntLimit = 9007199254740992.0; // 2^53

void
writeNumber(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        os << "null"; // JSON has no NaN/Inf
        return;
    }
    char buf[40];
    if (d == std::floor(d) && std::fabs(d) < kExactIntLimit) {
        std::snprintf(buf, sizeof(buf), "%.0f", d);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
    }
    os << buf;
}

void
newlineIndent(std::ostream &os, unsigned indent, unsigned depth)
{
    os << '\n';
    for (unsigned i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Value::writeIndented(std::ostream &os, unsigned indent,
                     unsigned depth) const
{
    switch (_kind) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (_bool ? "true" : "false");
        break;
      case Kind::Number:
        if (_exactUint) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(_uint));
            os << buf;
        } else {
            writeNumber(os, _num);
        }
        break;
      case Kind::String:
        writeEscaped(os, _str);
        break;
      case Kind::Array:
        if (_items.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (size_t i = 0; i < _items.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                newlineIndent(os, indent, depth + 1);
            _items[i].writeIndented(os, indent, depth + 1);
        }
        if (indent)
            newlineIndent(os, indent, depth);
        os << ']';
        break;
      case Kind::Object:
        if (_members.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (size_t i = 0; i < _members.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                newlineIndent(os, indent, depth + 1);
            writeEscaped(os, _members[i].first);
            os << (indent ? ": " : ":");
            _members[i].second.writeIndented(os, indent, depth + 1);
        }
        if (indent)
            newlineIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
Value::write(std::ostream &os, unsigned indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Value::dump(unsigned indent) const
{
    std::ostringstream ss;
    write(ss, indent);
    return ss.str();
}

namespace
{

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const std::string &text) : s(text) {}

    bool
    parse(Value &out, std::string *err)
    {
        bool ok = value(out) && (skipWs(), pos == s.size());
        if (!ok && err)
            *err = error.empty()
                       ? csprintf("json: trailing garbage at byte %zu",
                                  pos)
                       : error;
        return ok;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error.empty())
            error = csprintf("json: %s at byte %zu", what, pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (s.compare(pos, n, lit) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    value(Value &out)
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case 'n':
            out = Value();
            return literal("null");
          case 't':
            out = Value(true);
            return literal("true");
          case 'f':
            out = Value(false);
            return literal("false");
          case '"': {
            std::string str;
            if (!string(str))
                return false;
            out = Value(std::move(str));
            return true;
          }
          case '[':
            return array(out);
          case '{':
            return object(out);
          default:
            return number(out);
        }
    }

    bool
    string(std::string &out)
    {
        if (s[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos];
            if (c == '\\') {
                if (++pos >= s.size())
                    return fail("bad escape");
                switch (s[pos]) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        return fail("bad \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos + 1 + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            cp |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            cp |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // UTF-8 encode the BMP code point (no surrogate
                    // pairing; the writer never emits them).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
                ++pos;
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= s.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    number(Value &out)
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected value");
        char *end = nullptr;
        std::string tok = s.substr(start, pos - start);
        // Non-negative integer literals that fit uint64 parse
        // exactly, so 64-bit counters/seeds round-trip losslessly.
        if (tok.find_first_of(".eE-") == std::string::npos) {
            errno = 0;
            unsigned long long u = std::strtoull(tok.c_str(), &end, 10);
            if (end && *end == '\0' && errno == 0) {
                out = Value(static_cast<uint64_t>(u));
                return true;
            }
        }
        double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            return fail("bad number");
        out = Value(d);
        return true;
    }

    bool
    array(Value &out)
    {
        ++pos; // '['
        out = Value::array();
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            Value elem;
            if (!value(elem))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    object(Value &out)
    {
        ++pos; // '{'
        out = Value::object();
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            Value member;
            if (!value(member))
                return false;
            out.set(key, std::move(member));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &s;
    size_t pos = 0;
    std::string error;
};

} // namespace

bool
Value::parse(const std::string &text, Value &out, std::string *err)
{
    return Parser(text).parse(out, err);
}

bool
getBool(const Value &obj, const std::string &key, bool dflt)
{
    const Value *v = obj.find(key);
    return v && v->isBool() ? v->boolean() : dflt;
}

uint64_t
getUint(const Value &obj, const std::string &key, uint64_t dflt)
{
    const Value *v = obj.find(key);
    return v && v->isNumber() ? v->asUint64() : dflt;
}

int64_t
getInt(const Value &obj, const std::string &key, int64_t dflt)
{
    const Value *v = obj.find(key);
    return v && v->isNumber() ? static_cast<int64_t>(v->number())
                              : dflt;
}

double
getDouble(const Value &obj, const std::string &key, double dflt)
{
    const Value *v = obj.find(key);
    return v && v->isNumber() ? v->number() : dflt;
}

std::string
getString(const Value &obj, const std::string &key,
          const std::string &dflt)
{
    const Value *v = obj.find(key);
    return v && v->isString() ? v->str() : dflt;
}

} // namespace json
} // namespace chex

/**
 * @file
 * A small hierarchical statistics package in the spirit of gem5's.
 *
 * Modules own a StatGroup and register named scalars, formulas, and
 * histograms in it. Groups nest, so the simulator can dump one tree
 * (`system.cpu.commit.committedUops = ...`) and tests/benches can read
 * any value back by dotted path.
 */

#ifndef CHEX_BASE_STATS_HH
#define CHEX_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/json.hh"

namespace chex
{
namespace stats
{

/**
 * A named scalar counter. Counts are held as a uint64_t — every
 * producer in the simulator increments by whole events — and only
 * widened to double at dump/read time (value()). A double-backed
 * counter silently stops incrementing past 2^53 (adding 1.0 to
 * 9007199254740992.0 is a no-op), exactly the regime long
 * snapshot-fanned campaigns reach; the integer backing also keeps
 * the per-event increment off the FP unit on the fetch→retire hot
 * path.
 */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(uint64_t n) { _count += n; return *this; }
    Scalar &operator++() { ++_count; return *this; }
    void operator++(int) { ++_count; }
    Scalar &operator=(uint64_t n) { _count = n; return *this; }

    /** Exact integer count. */
    uint64_t count() const { return _count; }
    /** Widened for formulas and JSON (may round past 2^53). */
    double value() const { return static_cast<double>(_count); }
    void reset() { _count = 0; }

  private:
    uint64_t _count = 0;
};

/**
 * A histogram over a fixed linear bucket range with underflow and
 * overflow buckets; also tracks sum/count for mean computation.
 */
class Histogram
{
  public:
    /**
     * @param min Lowest in-range value.
     * @param max Highest in-range value (inclusive).
     * @param num_buckets Number of linear buckets between min and max.
     */
    Histogram(double min = 0.0, double max = 1.0,
              size_t num_buckets = 16);

    /** Record one sample. */
    void sample(double v, uint64_t count = 1);

    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minSample() const { return _minSample; }
    double maxSample() const { return _maxSample; }

    const std::vector<uint64_t> &buckets() const { return _buckets; }
    uint64_t underflow() const { return _underflow; }
    uint64_t overflow() const { return _overflow; }
    double bucketLow(size_t i) const;
    double bucketHigh(size_t i) const;

    void reset();

  private:
    double _min;
    double _max;
    std::vector<uint64_t> _buckets;
    uint64_t _underflow = 0;
    uint64_t _overflow = 0;
    uint64_t _count = 0;
    double _sum = 0.0;
    double _minSample = 0.0;
    double _maxSample = 0.0;
};

/** A derived statistic evaluated lazily at dump/read time. */
using Formula = std::function<double()>;

/**
 * A named collection of statistics, possibly with child groups.
 * Groups do not own their children; the owning module does. All
 * registration methods return references that remain valid for the
 * life of the group (storage is node-stable).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Register a named scalar; panics on duplicate names. */
    Scalar &addScalar(const std::string &name,
                      const std::string &desc);

    /** Register a named formula (lazy derived value). */
    void addFormula(const std::string &name, const std::string &desc,
                    Formula f);

    /** Register a named histogram. */
    Histogram &addHistogram(const std::string &name,
                            const std::string &desc, double min,
                            double max, size_t num_buckets);

    /** Attach a child group (not owned). */
    void addChild(StatGroup *child);

    /**
     * Read a value by dotted path relative to this group, e.g.
     * "commit.committedUops". Panics if the path does not resolve.
     */
    double get(const std::string &dotted_path) const;

    /** True if the dotted path resolves to a scalar or formula. */
    bool has(const std::string &dotted_path) const;

    /** Reset every scalar and histogram in this subtree. */
    void resetAll();

    /** Dump the whole subtree as `prefix.name = value # desc`. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Build the subtree as a JSON object: scalars and formulas
     * become numbers, histograms become {count, sum, mean, min, max}
     * objects, child groups nest under their names.
     */
    json::Value toJson() const;

    /** toJson() pretty-printed to @p os (no trailing newline). */
    void dumpJson(std::ostream &os) const;

  private:
    struct ScalarEntry
    {
        std::unique_ptr<Scalar> stat;
        std::string desc;
    };
    struct FormulaEntry
    {
        Formula formula;
        std::string desc;
    };
    struct HistEntry
    {
        std::unique_ptr<Histogram> stat;
        std::string desc;
    };

    const Scalar *findScalar(const std::string &name) const;
    const FormulaEntry *findFormula(const std::string &name) const;

    std::string _name;
    std::map<std::string, ScalarEntry> scalars;
    std::map<std::string, FormulaEntry> formulas;
    std::map<std::string, HistEntry> histograms;
    std::vector<StatGroup *> children;
};

} // namespace stats
} // namespace chex

#endif // CHEX_BASE_STATS_HH

#include "logging.hh"

#include <cstdarg>
#include <vector>

namespace chex
{

namespace
{

LogLevel gLogLevel = LogLevel::Warn;

} // anonymous namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Inform)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace chex

# Empty compiler generated dependencies file for fig09_memory_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_memory_overhead.dir/fig09_memory_overhead.cc.o"
  "CMakeFiles/fig09_memory_overhead.dir/fig09_memory_overhead.cc.o.d"
  "fig09_memory_overhead"
  "fig09_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig07_cache_missrates.
# This may be replaced when dependencies are built.

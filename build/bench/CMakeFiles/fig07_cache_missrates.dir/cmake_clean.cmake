file(REMOVE_RECURSE
  "CMakeFiles/fig07_cache_missrates.dir/fig07_cache_missrates.cc.o"
  "CMakeFiles/fig07_cache_missrates.dir/fig07_cache_missrates.cc.o.d"
  "fig07_cache_missrates"
  "fig07_cache_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cache_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for security_evaluation.
# This may be replaced when dependencies are built.

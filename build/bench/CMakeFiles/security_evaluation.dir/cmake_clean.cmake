file(REMOVE_RECURSE
  "CMakeFiles/security_evaluation.dir/security_evaluation.cc.o"
  "CMakeFiles/security_evaluation.dir/security_evaluation.cc.o.d"
  "security_evaluation"
  "security_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table3_configuration.dir/table3_configuration.cc.o"
  "CMakeFiles/table3_configuration.dir/table3_configuration.cc.o.d"
  "table3_configuration"
  "table3_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table3_configuration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03_allocation_behavior.dir/fig03_allocation_behavior.cc.o"
  "CMakeFiles/fig03_allocation_behavior.dir/fig03_allocation_behavior.cc.o.d"
  "fig03_allocation_behavior"
  "fig03_allocation_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_allocation_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig03_allocation_behavior.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_allocation_behavior.cc" "bench/CMakeFiles/fig03_allocation_behavior.dir/fig03_allocation_behavior.cc.o" "gcc" "bench/CMakeFiles/fig03_allocation_behavior.dir/fig03_allocation_behavior.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/chex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/chex_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/chex_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/chex_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/chex_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/chex_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/chex_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/chex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/chex_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/chex_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/chex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig08_alias_prediction.dir/fig08_alias_prediction.cc.o"
  "CMakeFiles/fig08_alias_prediction.dir/fig08_alias_prediction.cc.o.d"
  "fig08_alias_prediction"
  "fig08_alias_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_alias_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

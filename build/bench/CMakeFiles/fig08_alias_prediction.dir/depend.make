# Empty dependencies file for fig08_alias_prediction.
# This may be replaced when dependencies are built.

# Empty dependencies file for table2_temporal_patterns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_temporal_patterns.dir/table2_temporal_patterns.cc.o"
  "CMakeFiles/table2_temporal_patterns.dir/table2_temporal_patterns.cc.o.d"
  "table2_temporal_patterns"
  "table2_temporal_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_temporal_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/multicore_coherence.dir/multicore_coherence.cc.o"
  "CMakeFiles/multicore_coherence.dir/multicore_coherence.cc.o.d"
  "multicore_coherence"
  "multicore_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for multicore_coherence.
# This may be replaced when dependencies are built.

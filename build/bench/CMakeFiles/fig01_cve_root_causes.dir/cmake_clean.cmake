file(REMOVE_RECURSE
  "CMakeFiles/fig01_cve_root_causes.dir/fig01_cve_root_causes.cc.o"
  "CMakeFiles/fig01_cve_root_causes.dir/fig01_cve_root_causes.cc.o.d"
  "fig01_cve_root_causes"
  "fig01_cve_root_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cve_root_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig01_cve_root_causes.
# This may be replaced when dependencies are built.

# Empty dependencies file for table1_rule_database.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_performance.dir/fig06_performance.cc.o"
  "CMakeFiles/fig06_performance.dir/fig06_performance.cc.o.d"
  "fig06_performance"
  "fig06_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

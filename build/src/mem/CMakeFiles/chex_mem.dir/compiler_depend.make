# Empty compiler generated dependencies file for chex_mem.
# This may be replaced when dependencies are built.

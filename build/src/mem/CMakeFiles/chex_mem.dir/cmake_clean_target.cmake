file(REMOVE_RECURSE
  "libchex_mem.a"
)

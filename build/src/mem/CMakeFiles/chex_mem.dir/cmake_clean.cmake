file(REMOVE_RECURSE
  "CMakeFiles/chex_mem.dir/alias_table.cc.o"
  "CMakeFiles/chex_mem.dir/alias_table.cc.o.d"
  "CMakeFiles/chex_mem.dir/cache.cc.o"
  "CMakeFiles/chex_mem.dir/cache.cc.o.d"
  "CMakeFiles/chex_mem.dir/hierarchy.cc.o"
  "CMakeFiles/chex_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/chex_mem.dir/sparse_memory.cc.o"
  "CMakeFiles/chex_mem.dir/sparse_memory.cc.o.d"
  "libchex_mem.a"
  "libchex_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

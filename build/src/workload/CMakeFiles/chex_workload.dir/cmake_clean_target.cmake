file(REMOVE_RECURSE
  "libchex_workload.a"
)

# Empty compiler generated dependencies file for chex_workload.
# This may be replaced when dependencies are built.

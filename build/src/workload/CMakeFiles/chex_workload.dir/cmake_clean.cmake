file(REMOVE_RECURSE
  "CMakeFiles/chex_workload.dir/generator.cc.o"
  "CMakeFiles/chex_workload.dir/generator.cc.o.d"
  "CMakeFiles/chex_workload.dir/patterns.cc.o"
  "CMakeFiles/chex_workload.dir/patterns.cc.o.d"
  "CMakeFiles/chex_workload.dir/profiles.cc.o"
  "CMakeFiles/chex_workload.dir/profiles.cc.o.d"
  "libchex_workload.a"
  "libchex_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

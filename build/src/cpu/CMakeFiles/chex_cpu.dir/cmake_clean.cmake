file(REMOVE_RECURSE
  "CMakeFiles/chex_cpu.dir/bpred.cc.o"
  "CMakeFiles/chex_cpu.dir/bpred.cc.o.d"
  "CMakeFiles/chex_cpu.dir/core.cc.o"
  "CMakeFiles/chex_cpu.dir/core.cc.o.d"
  "CMakeFiles/chex_cpu.dir/machine_state.cc.o"
  "CMakeFiles/chex_cpu.dir/machine_state.cc.o.d"
  "libchex_cpu.a"
  "libchex_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

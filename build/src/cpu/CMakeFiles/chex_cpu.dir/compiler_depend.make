# Empty compiler generated dependencies file for chex_cpu.
# This may be replaced when dependencies are built.

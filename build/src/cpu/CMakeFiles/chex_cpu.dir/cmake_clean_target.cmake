file(REMOVE_RECURSE
  "libchex_cpu.a"
)

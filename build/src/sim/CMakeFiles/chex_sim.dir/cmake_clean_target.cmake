file(REMOVE_RECURSE
  "libchex_sim.a"
)

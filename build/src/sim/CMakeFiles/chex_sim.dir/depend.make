# Empty dependencies file for chex_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chex_sim.dir/coherence.cc.o"
  "CMakeFiles/chex_sim.dir/coherence.cc.o.d"
  "CMakeFiles/chex_sim.dir/system.cc.o"
  "CMakeFiles/chex_sim.dir/system.cc.o.d"
  "libchex_sim.a"
  "libchex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for chex_heap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chex_heap.dir/allocator.cc.o"
  "CMakeFiles/chex_heap.dir/allocator.cc.o.d"
  "libchex_heap.a"
  "libchex_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchex_heap.a"
)

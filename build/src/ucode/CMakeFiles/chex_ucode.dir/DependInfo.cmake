
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ucode/msr.cc" "src/ucode/CMakeFiles/chex_ucode.dir/msr.cc.o" "gcc" "src/ucode/CMakeFiles/chex_ucode.dir/msr.cc.o.d"
  "/root/repo/src/ucode/variant.cc" "src/ucode/CMakeFiles/chex_ucode.dir/variant.cc.o" "gcc" "src/ucode/CMakeFiles/chex_ucode.dir/variant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/chex_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/chex_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libchex_ucode.a"
)

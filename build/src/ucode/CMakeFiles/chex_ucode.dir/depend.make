# Empty dependencies file for chex_ucode.
# This may be replaced when dependencies are built.

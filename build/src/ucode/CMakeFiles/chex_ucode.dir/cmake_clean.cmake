file(REMOVE_RECURSE
  "CMakeFiles/chex_ucode.dir/msr.cc.o"
  "CMakeFiles/chex_ucode.dir/msr.cc.o.d"
  "CMakeFiles/chex_ucode.dir/variant.cc.o"
  "CMakeFiles/chex_ucode.dir/variant.cc.o.d"
  "libchex_ucode.a"
  "libchex_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

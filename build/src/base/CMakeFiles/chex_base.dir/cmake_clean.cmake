file(REMOVE_RECURSE
  "CMakeFiles/chex_base.dir/logging.cc.o"
  "CMakeFiles/chex_base.dir/logging.cc.o.d"
  "CMakeFiles/chex_base.dir/random.cc.o"
  "CMakeFiles/chex_base.dir/random.cc.o.d"
  "CMakeFiles/chex_base.dir/stats.cc.o"
  "CMakeFiles/chex_base.dir/stats.cc.o.d"
  "CMakeFiles/chex_base.dir/table.cc.o"
  "CMakeFiles/chex_base.dir/table.cc.o.d"
  "libchex_base.a"
  "libchex_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchex_base.a"
)

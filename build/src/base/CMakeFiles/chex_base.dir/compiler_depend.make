# Empty compiler generated dependencies file for chex_base.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for chex_tracker.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chex_tracker.dir/alias_predictor.cc.o"
  "CMakeFiles/chex_tracker.dir/alias_predictor.cc.o.d"
  "CMakeFiles/chex_tracker.dir/checker.cc.o"
  "CMakeFiles/chex_tracker.dir/checker.cc.o.d"
  "CMakeFiles/chex_tracker.dir/pointer_tracker.cc.o"
  "CMakeFiles/chex_tracker.dir/pointer_tracker.cc.o.d"
  "CMakeFiles/chex_tracker.dir/reg_tags.cc.o"
  "CMakeFiles/chex_tracker.dir/reg_tags.cc.o.d"
  "CMakeFiles/chex_tracker.dir/rules.cc.o"
  "CMakeFiles/chex_tracker.dir/rules.cc.o.d"
  "libchex_tracker.a"
  "libchex_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

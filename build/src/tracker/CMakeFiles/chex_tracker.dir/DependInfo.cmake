
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracker/alias_predictor.cc" "src/tracker/CMakeFiles/chex_tracker.dir/alias_predictor.cc.o" "gcc" "src/tracker/CMakeFiles/chex_tracker.dir/alias_predictor.cc.o.d"
  "/root/repo/src/tracker/checker.cc" "src/tracker/CMakeFiles/chex_tracker.dir/checker.cc.o" "gcc" "src/tracker/CMakeFiles/chex_tracker.dir/checker.cc.o.d"
  "/root/repo/src/tracker/pointer_tracker.cc" "src/tracker/CMakeFiles/chex_tracker.dir/pointer_tracker.cc.o" "gcc" "src/tracker/CMakeFiles/chex_tracker.dir/pointer_tracker.cc.o.d"
  "/root/repo/src/tracker/reg_tags.cc" "src/tracker/CMakeFiles/chex_tracker.dir/reg_tags.cc.o" "gcc" "src/tracker/CMakeFiles/chex_tracker.dir/reg_tags.cc.o.d"
  "/root/repo/src/tracker/rules.cc" "src/tracker/CMakeFiles/chex_tracker.dir/rules.cc.o" "gcc" "src/tracker/CMakeFiles/chex_tracker.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/chex_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/chex_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/chex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/chex_cap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libchex_tracker.a"
)

# Empty dependencies file for chex_attacks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chex_attacks.dir/asan_suite.cc.o"
  "CMakeFiles/chex_attacks.dir/asan_suite.cc.o.d"
  "CMakeFiles/chex_attacks.dir/how2heap.cc.o"
  "CMakeFiles/chex_attacks.dir/how2heap.cc.o.d"
  "CMakeFiles/chex_attacks.dir/ripe.cc.o"
  "CMakeFiles/chex_attacks.dir/ripe.cc.o.d"
  "libchex_attacks.a"
  "libchex_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

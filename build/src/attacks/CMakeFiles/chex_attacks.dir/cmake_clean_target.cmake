file(REMOVE_RECURSE
  "libchex_attacks.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("isa")
subdirs("mem")
subdirs("heap")
subdirs("cap")
subdirs("tracker")
subdirs("cpu")
subdirs("ucode")
subdirs("sim")
subdirs("workload")
subdirs("attacks")

file(REMOVE_RECURSE
  "libchex_cap.a"
)

# Empty compiler generated dependencies file for chex_cap.
# This may be replaced when dependencies are built.

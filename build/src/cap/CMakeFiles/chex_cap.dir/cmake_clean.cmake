file(REMOVE_RECURSE
  "CMakeFiles/chex_cap.dir/cap_cache.cc.o"
  "CMakeFiles/chex_cap.dir/cap_cache.cc.o.d"
  "CMakeFiles/chex_cap.dir/cap_table.cc.o"
  "CMakeFiles/chex_cap.dir/cap_table.cc.o.d"
  "CMakeFiles/chex_cap.dir/capability.cc.o"
  "CMakeFiles/chex_cap.dir/capability.cc.o.d"
  "libchex_cap.a"
  "libchex_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/chex_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/chex_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/decoder.cc" "src/isa/CMakeFiles/chex_isa.dir/decoder.cc.o" "gcc" "src/isa/CMakeFiles/chex_isa.dir/decoder.cc.o.d"
  "/root/repo/src/isa/insts.cc" "src/isa/CMakeFiles/chex_isa.dir/insts.cc.o" "gcc" "src/isa/CMakeFiles/chex_isa.dir/insts.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/isa/CMakeFiles/chex_isa.dir/program.cc.o" "gcc" "src/isa/CMakeFiles/chex_isa.dir/program.cc.o.d"
  "/root/repo/src/isa/regs.cc" "src/isa/CMakeFiles/chex_isa.dir/regs.cc.o" "gcc" "src/isa/CMakeFiles/chex_isa.dir/regs.cc.o.d"
  "/root/repo/src/isa/uops.cc" "src/isa/CMakeFiles/chex_isa.dir/uops.cc.o" "gcc" "src/isa/CMakeFiles/chex_isa.dir/uops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/chex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libchex_isa.a"
)

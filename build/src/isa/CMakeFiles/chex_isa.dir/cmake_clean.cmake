file(REMOVE_RECURSE
  "CMakeFiles/chex_isa.dir/assembler.cc.o"
  "CMakeFiles/chex_isa.dir/assembler.cc.o.d"
  "CMakeFiles/chex_isa.dir/decoder.cc.o"
  "CMakeFiles/chex_isa.dir/decoder.cc.o.d"
  "CMakeFiles/chex_isa.dir/insts.cc.o"
  "CMakeFiles/chex_isa.dir/insts.cc.o.d"
  "CMakeFiles/chex_isa.dir/program.cc.o"
  "CMakeFiles/chex_isa.dir/program.cc.o.d"
  "CMakeFiles/chex_isa.dir/regs.cc.o"
  "CMakeFiles/chex_isa.dir/regs.cc.o.d"
  "CMakeFiles/chex_isa.dir/uops.cc.o"
  "CMakeFiles/chex_isa.dir/uops.cc.o.d"
  "libchex_isa.a"
  "libchex_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chex_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

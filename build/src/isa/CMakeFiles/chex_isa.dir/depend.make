# Empty dependencies file for chex_isa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pattern_zoo.dir/pattern_zoo.cpp.o"
  "CMakeFiles/pattern_zoo.dir/pattern_zoo.cpp.o.d"
  "pattern_zoo"
  "pattern_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

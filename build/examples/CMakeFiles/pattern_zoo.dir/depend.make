# Empty dependencies file for pattern_zoo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/variant_study.dir/variant_study.cpp.o"
  "CMakeFiles/variant_study.dir/variant_study.cpp.o.d"
  "variant_study"
  "variant_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for variant_study.
# This may be replaced when dependencies are built.

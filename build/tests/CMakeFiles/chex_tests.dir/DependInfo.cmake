
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alias_predictor.cc" "tests/CMakeFiles/chex_tests.dir/test_alias_predictor.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_alias_predictor.cc.o.d"
  "/root/repo/tests/test_base.cc" "tests/CMakeFiles/chex_tests.dir/test_base.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_base.cc.o.d"
  "/root/repo/tests/test_bpred.cc" "tests/CMakeFiles/chex_tests.dir/test_bpred.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_bpred.cc.o.d"
  "/root/repo/tests/test_cap.cc" "tests/CMakeFiles/chex_tests.dir/test_cap.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_cap.cc.o.d"
  "/root/repo/tests/test_checker.cc" "tests/CMakeFiles/chex_tests.dir/test_checker.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_checker.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/chex_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/chex_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_core_properties.cc" "tests/CMakeFiles/chex_tests.dir/test_core_properties.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_core_properties.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/chex_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_heap.cc" "tests/CMakeFiles/chex_tests.dir/test_heap.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_heap.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/chex_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_machine_state.cc" "tests/CMakeFiles/chex_tests.dir/test_machine_state.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_machine_state.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/chex_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_msr.cc" "tests/CMakeFiles/chex_tests.dir/test_msr.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_msr.cc.o.d"
  "/root/repo/tests/test_patterns.cc" "tests/CMakeFiles/chex_tests.dir/test_patterns.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_patterns.cc.o.d"
  "/root/repo/tests/test_reg_tags.cc" "tests/CMakeFiles/chex_tests.dir/test_reg_tags.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_reg_tags.cc.o.d"
  "/root/repo/tests/test_rules.cc" "tests/CMakeFiles/chex_tests.dir/test_rules.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_rules.cc.o.d"
  "/root/repo/tests/test_security.cc" "tests/CMakeFiles/chex_tests.dir/test_security.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_security.cc.o.d"
  "/root/repo/tests/test_stats_dump.cc" "tests/CMakeFiles/chex_tests.dir/test_stats_dump.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_stats_dump.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/chex_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_uninit.cc" "tests/CMakeFiles/chex_tests.dir/test_uninit.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_uninit.cc.o.d"
  "/root/repo/tests/test_variants.cc" "tests/CMakeFiles/chex_tests.dir/test_variants.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_variants.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/chex_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/chex_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/chex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/chex_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/chex_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/chex_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/chex_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/chex_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/chex_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/chex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/chex_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/chex_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/chex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

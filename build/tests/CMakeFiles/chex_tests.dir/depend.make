# Empty dependencies file for chex_tests.
# This may be replaced when dependencies are built.
